#!/usr/bin/env python3
"""Quickstart: hop-constrained s-t path enumeration on a dynamic graph.

Builds a small directed graph, runs the start-up enumeration
(``CPE_startup``), then streams edge updates through ``CPE_update`` and
prints exactly the new/deleted paths after each one — the workflow of
Figure 1 in the paper.

Run:  python examples/quickstart.py
"""

from repro import CpeEnumerator, DynamicDiGraph


def main() -> None:
    # The dynamic graph: vertices are any hashable objects.
    graph = DynamicDiGraph(
        [
            ("s", "a"), ("s", "b"),
            ("a", "c"), ("b", "c"),
            ("c", "t"), ("a", "t"),
        ]
    )

    # One enumerator per monitored query q(s, t, k).
    cpe = CpeEnumerator(graph, s="s", t="t", k=3)

    print("start-up enumeration (all 3-st paths):")
    for path in sorted(cpe.startup(), key=len):
        print("   ", " -> ".join(path))
    print(f"join plan: l={cpe.plan.l}, r={cpe.plan.r}, pairs={cpe.plan.pairs}")

    # Updates flow through the enumerator so index + distances stay exact.
    print("\ninsert edge (b, t):")
    result = cpe.insert_edge("b", "t")
    for path in result.paths:
        print("    new:", " -> ".join(path))
    print(f"    maintenance took {result.maintain_seconds * 1e6:.0f} us")

    print("\ndelete edge (c, t):")
    result = cpe.delete_edge("c", "t")
    for path in result.paths:
        print("    deleted:", " -> ".join(path))

    print("\ncurrent result set:")
    for path in sorted(cpe.startup(), key=len):
        print("   ", " -> ".join(path))

    stats = cpe.memory_stats()
    print(
        f"\nindex: {stats.left_paths} left partials, "
        f"{stats.right_paths} right partials, ~{stats.approx_bytes} bytes"
    )


if __name__ == "__main__":
    main()

__all__ = [
    "main",
]
