#!/usr/bin/env python3
"""Profiling a CPE workload with ``repro.obs``.

Where does the time go — index construction, the start-up join, or
update maintenance?  This example answers that with the built-in
observability layer instead of an external profiler:

1. enable `repro.obs` (it is off by default and free when off);
2. run a representative lifecycle: build an index, enumerate, then
   replay a stream of relevant updates;
3. print the per-stage cost table (`obs.render_profile`) — the same
   output `repro profile <dataset>` gives from the command line;
4. show the head of the Prometheus exposition, which is what
   `repro serve --metrics` exposes through the `metrics` op.

Run:  python examples/profiling.py
"""

from repro import obs
from repro.core.enumerator import CpeEnumerator
from repro.graph import datasets
from repro.workloads.queries import hot_queries
from repro.workloads.updates import relevant_update_stream

DATASET = "RT"
SCALE = 0.25
K = 6
NUM_UPDATES = 40


def main() -> None:
    graph = datasets.load(DATASET, SCALE)
    (query,) = hot_queries(graph, 1, K, seed=7)

    previous = obs.set_enabled(True)
    obs.reset()
    try:
        enumerator = CpeEnumerator(graph, query.s, query.t, query.k)
        paths = enumerator.startup()
        stream = relevant_update_stream(
            graph, query.s, query.t, query.k,
            num_insertions=NUM_UPDATES // 2,
            num_deletions=NUM_UPDATES // 2, seed=7,
        )
        applied = 0
        for update in stream:
            if graph.apply_update(update):
                enumerator.observe(update)
                applied += 1
        snapshot = obs.snapshot()
    finally:
        obs.set_enabled(previous)

    title = (f"profile {DATASET} scale {SCALE} k {K}: "
             f"q({query.s}, {query.t}), {len(paths)} initial paths, "
             f"{applied} updates")
    print(obs.render_profile(snapshot, title=title))

    print("\nPrometheus exposition (first lines):")
    for line in obs.render_prometheus().splitlines()[:6]:
        print(f"    {line}")


if __name__ == "__main__":
    main()

__all__ = [
    "DATASET",
    "SCALE",
    "K",
    "NUM_UPDATES",
    "main",
]
