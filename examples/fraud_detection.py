#!/usr/bin/env python3
"""Financial-crimes detection: live risk scores over a transaction graph.

The paper's first motivating application: money laundering is flagged by
short transaction flows between suspect accounts, and platforms see
thousands of new transactions per second — so the k-st path set backing
a risk score must be *maintained*, not recomputed.

This example

1. builds a transaction network with dense intra-bank communities and
   sparse cross-bank transfers (where layering schemes hide);
2. registers a watchlist of suspect account pairs, one ``CpeEnumerator``
   per pair (k = 5 — the "short flow paths" of the FATF red flags);
3. streams random transactions (arrivals) and expirations (a sliding
   window) and updates each pair's risk score from only the changed
   paths, raising an alert when a score crosses the threshold;
4. compares the cumulative update cost against recompute-from-scratch.

Each monitored pair owns a private copy of the graph: a
``CpeEnumerator``'s index is only valid if every mutation flows through
it, so independent monitors cannot share one mutable graph object.

Run:  python examples/fraud_detection.py
"""

import random
import time

from repro import CpeEnumerator
from repro.baselines.recompute import RecomputeEnumerator
from repro.graph.generators import community_graph

HOP_CONSTRAINT = 5
ALERT_THRESHOLD = 3.0
NUM_TRANSACTIONS = 300


def path_weight(path) -> float:
    """Shorter flows are stronger laundering indicators."""
    return 1.0 / (len(path) - 1)


def main() -> None:
    rng = random.Random(2023)
    # 8 banks x 25 accounts, dense internal flows, sparse cross-bank ones
    network = community_graph(8, 25, 0.18, 140, seed=11)
    accounts = list(network.vertices())

    watchlist = [(3, 187), (30, 140), (51, 199)]
    monitors = {}
    scores = {}
    for src, dst in watchlist:
        cpe = CpeEnumerator(network.copy(), src, dst, HOP_CONSTRAINT)
        monitors[(src, dst)] = cpe
        scores[(src, dst)] = sum(path_weight(p) for p in cpe.startup())

    print("initial risk scores:")
    for pair, score in scores.items():
        print(f"    {pair}: {score:.3f}")

    alerts = []
    update_cost = 0.0
    began = time.perf_counter()
    for step in range(NUM_TRANSACTIONS):
        u, v = rng.sample(accounts, 2)
        insert = not network.has_edge(u, v)
        if insert:
            network.add_edge(u, v)  # new transaction arrives
        else:
            network.remove_edge(u, v)  # old transaction expires
        for pair, cpe in monitors.items():
            result = cpe.insert_edge(u, v) if insert else cpe.delete_edge(u, v)
            update_cost += result.total_seconds
            delta = sum(path_weight(p) for p in result.paths)
            scores[pair] += delta if insert else -delta
            if insert and delta > 0 and scores[pair] > ALERT_THRESHOLD:
                alerts.append((step, pair, scores[pair]))
    elapsed = time.perf_counter() - began

    print(f"\nprocessed {NUM_TRANSACTIONS} transactions in {elapsed:.2f}s "
          f"({update_cost * 1e3:.1f} ms spent inside CPE_update)")
    print(f"alerts raised: {len(alerts)}")
    for step, pair, score in alerts[:5]:
        print(f"    step {step}: pair {pair} risk {score:.2f}")

    print("final risk scores:")
    for pair, score in scores.items():
        print(f"    {pair}: {score:.3f}")

    # sanity: the incrementally maintained score equals a recomputation
    for pair, cpe in monitors.items():
        fresh = sum(path_weight(p) for p in cpe.startup())
        assert abs(fresh - scores[pair]) < 1e-9, "maintained score drifted"

    # contrast with the recompute strategy on one pair
    src, dst = watchlist[0]
    rec = RecomputeEnumerator(network.copy(), src, dst, HOP_CONSTRAINT)
    rec.startup()
    began = time.perf_counter()
    recompute_updates = 30
    for _ in range(recompute_updates):
        u, v = rng.sample(accounts, 2)
        if rec.graph.has_edge(u, v):
            rec.delete_edge(u, v)
        else:
            rec.insert_edge(u, v)
    recompute_cost = time.perf_counter() - began
    per_cpe = update_cost / (NUM_TRANSACTIONS * len(watchlist))
    per_rec = recompute_cost / recompute_updates
    print(
        f"\nper-update cost: CPE_update {per_cpe * 1e6:.0f} us vs "
        f"recompute {per_rec * 1e6:.0f} us "
        f"({per_rec / max(per_cpe, 1e-12):.0f}x slower)"
    )


if __name__ == "__main__":
    main()

__all__ = [
    "HOP_CONSTRAINT",
    "ALERT_THRESHOLD",
    "NUM_TRANSACTIONS",
    "path_weight",
    "main",
]
