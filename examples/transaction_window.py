#!/usr/bin/env python3
"""Sliding-window monitoring of a suspect watchlist over one shared graph.

Combines the two library extensions the paper's applications imply:

- :class:`~repro.core.monitor.MultiPairMonitor` — many suspect pairs
  monitored over *one* transaction graph, every index repaired from a
  single pass per update;
- :class:`~repro.core.monitor.SlidingWindowMonitor` — transactions carry
  timestamps and *expire* after a retention window, driving insertions
  and deletions automatically ("continuously updated upon the arrival
  and expiration of edges").

It also snapshots the state mid-stream and restores it, as a
long-running monitor surviving a process restart would.

Run:  python examples/transaction_window.py
"""

import random

from repro.core.monitor import MultiPairMonitor, SlidingWindowMonitor
from repro.core.serialize import restore, snapshot
from repro.graph.digraph import DynamicDiGraph

WINDOW = 60.0        # transactions stay relevant for 60 time units
HOP_CONSTRAINT = 5
EVENTS = 500
ACCOUNTS = 40


def main() -> None:
    rng = random.Random(4)
    graph = DynamicDiGraph(vertices=range(ACCOUNTS))
    monitor = MultiPairMonitor(graph, k=HOP_CONSTRAINT)
    watchlist = [(0, 39), (5, 27), (13, 31)]
    for s, t in watchlist:
        monitor.watch(s, t)
    window = SlidingWindowMonitor(monitor, WINDOW)

    flows = {pair: 0 for pair in watchlist}
    busiest = (0, None)
    clock = 0.0
    for _ in range(EVENTS):
        clock += rng.expovariate(2.0)  # Poisson-ish arrivals
        u, v = rng.sample(range(ACCOUNTS), 2)
        event = window.offer(u, v, clock)
        for pair in watchlist:
            gained = len(event.new_paths(pair))
            lost = len(event.deleted_paths(pair))
            flows[pair] += gained - lost
            if flows[pair] > busiest[0]:
                busiest = (flows[pair], pair)

    print(f"after {EVENTS} transactions over {clock:.0f} time units:")
    print(f"    live transactions in window: {window.live_edges()}")
    for pair, count in flows.items():
        print(f"    pair {pair}: {count} active flow paths")
    print(f"    peak exposure: pair {busiest[1]} with {busiest[0]} paths")

    # the incrementally maintained counts must equal recomputation
    for (s, t), paths in monitor.results().items():
        assert len(paths) == flows[(s, t)], "maintained flow count drifted"
    print("maintained counts match recomputation: OK")

    # snapshot one monitored pair and restore it (restart survival)
    s, t = watchlist[0]
    state = snapshot(monitor.enumerator_for(s, t))
    clone = restore(state)
    assert set(clone.startup()) == set(monitor.results()[(s, t)])
    print(f"snapshot/restore of pair ({s}, {t}): "
          f"{len(state['left']) + len(state['right'])} partial paths, OK")


if __name__ == "__main__":
    main()

__all__ = [
    "WINDOW",
    "HOP_CONSTRAINT",
    "EVENTS",
    "ACCOUNTS",
    "main",
]
