#!/usr/bin/env python3
"""Communication network: terminal reliability under link churn.

The paper's third motivating application: enumeration of all simple
paths between a terminal pair is a classic ingredient of terminal
reliability computation (Misra & Misra 1980), and communication graphs
change constantly as devices join/leave and links fail.

This example maintains, for a terminal pair in a backbone-like topology:

- the number of operational routes within the hop budget,
- a Monte-Carlo estimate of terminal reliability (the probability that
  at least one route is fully operational when each link independently
  works with probability ``LINK_UP``), estimated over the *maintained*
  path set,

and keeps both current while links flap.

Run:  python examples/network_reliability.py
"""

import random
import time

from repro import CpeEnumerator, DynamicDiGraph

K = 6
LINK_UP = 0.9
FLAPS = 200
MC_SAMPLES = 2000


def build_backbone(rings: int = 3, size: int = 12) -> DynamicDiGraph:
    """Concentric rings with radial links — a toy ISP backbone."""
    g = DynamicDiGraph()
    for ring in range(rings):
        base = ring * size
        for i in range(size):
            a, b = base + i, base + (i + 1) % size
            g.add_edge(a, b)
            g.add_edge(b, a)
            if ring > 0:  # radial up/down links
                inner = (ring - 1) * size + i
                g.add_edge(a, inner)
                g.add_edge(inner, a)
    return g


def reliability(paths, rng: random.Random) -> float:
    """Monte-Carlo terminal reliability from the live path set."""
    if not paths:
        return 0.0
    edge_sets = [tuple(zip(p, p[1:])) for p in paths]
    all_edges = sorted({e for es in edge_sets for e in es})
    hits = 0
    for _ in range(MC_SAMPLES):
        up = {e for e in all_edges if rng.random() < LINK_UP}
        if any(all(e in up for e in es) for es in edge_sets):
            hits += 1
    return hits / MC_SAMPLES


def main() -> None:
    rng = random.Random(99)
    net = build_backbone()
    terminals = (0, 27)  # outer-ring node to an inner-ring node 5 hops away
    cpe = CpeEnumerator(net, *terminals, K)

    paths = set(cpe.startup())
    print(f"terminals {terminals}: {len(paths)} routes within {K} hops")
    print(f"estimated reliability: {reliability(paths, rng):.3f}")

    nodes = list(net.vertices())
    down_events = up_events = 0
    began = time.perf_counter()
    low_point = (len(paths), 0)
    for step in range(FLAPS):
        u, v = rng.sample(nodes, 2)
        if net.has_edge(u, v):
            result = cpe.delete_edge(u, v)  # link failure
            paths.difference_update(result.paths)
            down_events += 1
        else:
            result = cpe.insert_edge(u, v)  # link (re)established
            paths.update(result.paths)
            up_events += 1
        if len(paths) < low_point[0]:
            low_point = (len(paths), step)
    elapsed = time.perf_counter() - began

    print(f"\nafter {down_events} failures and {up_events} repairs "
          f"({elapsed * 1e3:.0f} ms):")
    print(f"    {len(paths)} routes remain")
    print(f"    worst moment: {low_point[0]} routes at step {low_point[1]}")
    print(f"    estimated reliability now: {reliability(paths, rng):.3f}")

    assert paths == set(cpe.startup()), "maintained route set drifted"
    print("maintained route set matches recomputation: OK")


if __name__ == "__main__":
    main()

__all__ = [
    "K",
    "LINK_UP",
    "FLAPS",
    "MC_SAMPLES",
    "build_backbone",
    "reliability",
    "main",
]
