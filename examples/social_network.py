#!/usr/bin/env python3
"""Social network: relationship strength between two users, maintained live.

The paper's second motivating application: the strength of the
relationship between two users is measured from the materialized set of
k-st paths connecting them (many short paths = strong tie).  Social
graphs change every second, so the measure is kept current by querying
only the new/deleted paths after each update instead of recomputing.

The strength metric used here is the classic Katz-style sum
``sum(beta ** len(p))`` over all simple paths ``p`` within k hops.

Run:  python examples/social_network.py
"""

import random
import time

from repro import CpeEnumerator
from repro.graph.generators import preferential_attachment_graph

K = 4
BETA = 0.5
CHURN = 400


def strength_of(paths) -> float:
    """Katz-style tie strength contribution of a set of paths."""
    return sum(BETA ** (len(p) - 1) for p in paths)


def main() -> None:
    rng = random.Random(7)
    graph = preferential_attachment_graph(800, 3, seed=42)

    # pick two well-connected users (a hub and a mid-degree user)
    by_degree = sorted(graph.vertices(), key=graph.degree, reverse=True)
    alice, bob = by_degree[0], by_degree[25]
    print(f"monitoring tie strength between user {alice} (degree "
          f"{graph.degree(alice)}) and user {bob} (degree {graph.degree(bob)})")

    cpe = CpeEnumerator(graph, alice, bob, K)
    paths = cpe.startup()
    strength = strength_of(paths)
    print(f"initial: {len(paths)} connecting paths, strength {strength:.3f}")

    users = list(graph.vertices())
    # churn biased toward the monitored pair's neighborhood, like the
    # activity locality of a real feed
    neighborhood = sorted(
        set(graph.out_neighbors(alice))
        | set(graph.in_neighbors(alice))
        | set(graph.out_neighbors(bob))
        | set(graph.in_neighbors(bob))
    )
    history = [strength]
    began = time.perf_counter()
    for _ in range(CHURN):
        if neighborhood and rng.random() < 0.5:
            u = rng.choice(neighborhood)
            v = rng.choice(users)
            if u == v:
                continue
        else:
            u, v = rng.sample(users, 2)
        if graph.has_edge(u, v):
            result = cpe.delete_edge(u, v)   # unfollow / unfriend
            strength -= strength_of(result.paths)
        else:
            result = cpe.insert_edge(u, v)   # new follow
            strength += strength_of(result.paths)
        history.append(strength)
    elapsed = time.perf_counter() - began

    print(f"after {CHURN} follow/unfollow events ({elapsed * 1e3:.0f} ms):")
    print(f"    strength now {strength:.3f} "
          f"(min {min(history):.3f}, max {max(history):.3f})")

    # verify against a from-scratch recomputation
    fresh = strength_of(cpe.startup())
    assert abs(fresh - strength) < 1e-9
    print("maintained strength matches recomputation: OK")

    # a tiny trend report
    step = max(1, len(history) // 10)
    print("\ntrend (every {} events):".format(step))
    for i in range(0, len(history), step):
        bar = "#" * int(history[i] * 4)
        print(f"    {i:4d} {history[i]:7.3f} {bar}")


if __name__ == "__main__":
    main()

__all__ = [
    "K",
    "BETA",
    "CHURN",
    "strength_of",
    "main",
]
