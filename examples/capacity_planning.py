#!/usr/bin/env python3
"""Capacity planning: decide what is safe to monitor before indexing it.

A monitoring deployment has a budget: each watched pair costs memory
(its partial path index) and per-update time (proportional to its
Δ|P|).  This example uses the estimation utilities to triage candidate
pairs *without* building their indexes first:

1. rank candidate pairs by the cheap walk-count upper bound;
2. refine the borderline ones with the sampling estimator;
3. admit pairs under the budget, build their monitors, and compare the
   estimates against the real index sizes;
4. run a self-audit (`repro.core.verify`) after a burst of updates.

Run:  python examples/capacity_planning.py
"""

import random

from repro.core.estimate import estimate_path_count, walk_count_bound
from repro.core.monitor import MultiPairMonitor
from repro.core.verify import verify_enumerator
from repro.graph.generators import preferential_attachment_graph

K = 5
PATH_BUDGET = 120  # max |P| we are willing to maintain per pair
CANDIDATES = 12


def main() -> None:
    rng = random.Random(31)
    graph = preferential_attachment_graph(1500, 3, seed=8)
    users = sorted(graph.vertices(), key=graph.degree, reverse=True)

    candidates = []
    while len(candidates) < CANDIDATES:
        s = rng.choice(users[:40])  # hot endpoints: some will blow the budget
        t = rng.choice(users[:200])
        if s != t and (s, t) not in candidates:
            candidates.append((s, t))

    print(f"triaging {len(candidates)} candidate pairs (k={K}, "
          f"budget |P| <= {PATH_BUDGET})\n")
    print(f"{'pair':>14}  {'walk bound':>10}  {'sampled |P|':>11}  decision")
    admitted = []
    for s, t in candidates:
        bound = walk_count_bound(graph, s, t, K)
        if bound == 0:
            print(f"{str((s, t)):>14}  {bound:>10}  {'-':>11}  skip (no walks)")
            continue
        if bound <= PATH_BUDGET:
            print(f"{str((s, t)):>14}  {bound:>10}  {'-':>11}  admit (bound ok)")
            admitted.append((s, t))
            continue
        sampled = estimate_path_count(graph, s, t, K, samples=300, seed=1)
        decision = "admit (sampled)" if sampled <= PATH_BUDGET else "REJECT"
        print(f"{str((s, t)):>14}  {bound:>10}  {sampled:>11.0f}  {decision}")
        if sampled <= PATH_BUDGET:
            admitted.append((s, t))

    print(f"\nbuilding monitors for {len(admitted)} admitted pairs...")
    monitor = MultiPairMonitor(graph, K)
    for s, t in admitted:
        paths = monitor.watch(s, t)
        stats = monitor.enumerator_for(s, t).memory_stats()
        flag = "  (over budget!)" if len(paths) > PATH_BUDGET else ""
        print(f"    {str((s, t)):>14}: |P|={len(paths):>6}  "
              f"index ~{stats.approx_bytes:>8} B{flag}")

    print("\napplying a burst of 200 updates...")
    vertices = list(graph.vertices())
    for _ in range(200):
        u, v = rng.sample(vertices, 2)
        if graph.has_edge(u, v):
            monitor.delete_edge(u, v)
        else:
            monitor.insert_edge(u, v)

    print("auditing every maintained index against recomputation:")
    for s, t in admitted:
        findings = verify_enumerator(monitor.enumerator_for(s, t))
        status = "OK" if not findings else f"FAILED: {findings[:2]}"
        print(f"    {str((s, t)):>14}: {status}")
        assert not findings


if __name__ == "__main__":
    main()

__all__ = [
    "K",
    "PATH_BUDGET",
    "CANDIDATES",
    "main",
]
