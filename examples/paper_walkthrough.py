#!/usr/bin/env python3
"""A guided tour of the CPE machinery on the paper's running example.

Reconstructs (a variant of) the paper's Figure 2 graph and shows, step
by step, what each piece computes: the distance maps and induced
subgraph (Theorem 4), the partial path index with the admissibility
pruning (Fig. 2's remark about `{s, v2, v1}`), the join plan, the
start-up join, and one insertion and one deletion with their exact
deltas and index changes.

Companion reading: docs/ALGORITHMS.md.

Run:  python examples/paper_walkthrough.py
"""

from repro import CpeEnumerator, DynamicDiGraph
from repro.core.distance import induced_vertices


def banner(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def show_index(cpe: CpeEnumerator) -> None:
    index = cpe.index
    for side, buckets in (("LP", index.left), ("RP", index.right)):
        for length in sorted(buckets.lengths()):
            bucket = buckets.bucket(length)
            for vertex in sorted(bucket, key=repr):
                paths = sorted(bucket[vertex])
                rendered = ", ".join(
                    "(" + ",".join(map(str, p)) + ")" for p in paths
                )
                print(f"    {side}_{length}({vertex}) = {{{rendered}}}")


def main() -> None:
    # s = 0, t = 9; vertex 7 leads to a dead end (8 cannot reach t),
    # mirroring Fig. 2's pruned partial path {s, v2, v1}.
    graph = DynamicDiGraph(
        [
            (0, 1), (0, 2), (1, 3), (2, 3), (2, 4),
            (3, 5), (4, 5), (3, 6), (5, 9), (6, 9),
            (1, 7), (7, 8),
        ]
    )
    s, t, k = 0, 9, 4

    banner(f"query q(s={s}, t={t}, k={k})")
    cpe = CpeEnumerator(graph, s, t, k)

    banner("preprocessing: distance maps and induced subgraph (Theorem 4)")
    dist_s, dist_t = cpe.dist_s, cpe.dist_t
    for v in sorted(graph.vertices()):
        ds = dist_s.get(v)
        dt = dist_t.get(v)
        mark = "  in G_sub" if ds + dt <= k else "  PRUNED (Dist_s+Dist_t > k)"
        ds_text = str(ds) if ds <= k else "far"
        dt_text = str(dt) if dt <= k else "far"
        print(f"    v={v}: Dist_s={ds_text:>3}  Dist_t={dt_text:>3}{mark}")
    sub = induced_vertices(dist_s, dist_t, k)
    print(f"    |V_sub| = {len(sub)} of {graph.num_vertices}")

    banner("the partial path index (Optimizations 1 + 2)")
    print(f"    join plan: {cpe.plan.pairs}  (l={cpe.plan.l}, r={cpe.plan.r})")
    show_index(cpe)
    print("    note: no LP path ever ends at 7 or 8 — "
          "len + Dist_t > k prunes them (Fig. 2's remark)")

    banner("start-up enumeration (Algorithm 1)")
    for path in sorted(cpe.startup(), key=lambda p: (len(p), p)):
        i, j = cpe.plan.pair_for_length(len(path) - 1)
        vc = path[i]
        print(f"    {' -> '.join(map(str, path))}"
              f"   [pair ({i},{j}), middle vertex {vc}]")

    banner("insertion: e(8, 9, +) revives the dead-end branch")
    result = cpe.insert_edge(8, 9)
    print(f"    relaxed Dist_t vertices: {result.record.relaxed_t}")
    print(f"    new partial paths: {result.record.delta_partial_paths}")
    for path in sorted(result.paths):
        print(f"    NEW  {' -> '.join(map(str, path))}")

    banner("deletion: e(3, 5, -) kills paths and tightens distances")
    result = cpe.delete_edge(3, 5)
    print(f"    tightened Dist_s/Dist_t vertices: "
          f"{result.record.tightened_s}/{result.record.tightened_t}")
    for path in sorted(result.paths):
        print(f"    DEL  {' -> '.join(map(str, path))}")

    banner("final state")
    for path in sorted(cpe.startup(), key=lambda p: (len(p), p)):
        print(f"    {' -> '.join(map(str, path))}")
    stats = cpe.memory_stats()
    print(f"    index: {stats.path_count} partial paths, "
          f"~{stats.approx_bytes} bytes")


if __name__ == "__main__":
    main()

__all__ = [
    "banner",
    "show_index",
    "main",
]
