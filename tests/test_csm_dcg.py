"""Differential tests for the CSM-DCG baseline."""

import random

import pytest

from repro.baselines.bruteforce import path_set
from repro.baselines.csm_dcg import CsmDcgEnumerator
from repro.graph.digraph import DynamicDiGraph, EdgeUpdate
from tests.conftest import make_random_graph, random_query


class TestCounters:
    def test_initial_forward_counts(self, diamond):
        enum = CsmDcgEnumerator(diamond.copy(), 0, 3, 3)
        # walks from 0: level 1 = {1, 2, 3}, level 2 = {3 (two ways)}
        assert enum._forward[1] == {1: 1, 2: 1, 3: 1}
        assert enum._forward[2] == {3: 2}

    def test_initial_backward_counts(self, diamond):
        enum = CsmDcgEnumerator(diamond.copy(), 0, 3, 3)
        assert enum._backward[1] == {1: 1, 2: 1, 0: 1}
        assert enum._backward[2][0] == 2

    def test_counters_maintained_under_streams(self):
        rng = random.Random(31)
        for _ in range(30):
            g = make_random_graph(rng, max_edges=14)
            s, t, k = random_query(rng, g)
            enum = CsmDcgEnumerator(g, s, t, k)
            for _ in range(15):
                u, v = rng.sample(list(g.vertices()), 2)
                if g.has_edge(u, v):
                    enum.delete_edge(u, v)
                else:
                    enum.insert_edge(u, v)
                assert enum.counters_consistent()

    def test_counters_handle_cycles(self):
        # walks may reuse the new edge repeatedly; deltas must feed back
        g = DynamicDiGraph([(0, 1), (1, 2)])
        enum = CsmDcgEnumerator(g, 0, 2, 6)
        enum.insert_edge(2, 0)  # creates a 3-cycle
        assert enum.counters_consistent()
        enum.delete_edge(1, 2)
        assert enum.counters_consistent()

    def test_memory_grows_with_k(self, diamond):
        small = CsmDcgEnumerator(diamond.copy(), 0, 3, 2).index_memory_bytes()
        large = CsmDcgEnumerator(diamond.copy(), 0, 3, 8).index_memory_bytes()
        assert large > small


class TestEnumeration:
    def test_startup_matches_bruteforce(self):
        rng = random.Random(32)
        for _ in range(30):
            g = make_random_graph(rng, max_edges=16)
            s, t, k = random_query(rng, g)
            enum = CsmDcgEnumerator(g.copy(), s, t, k)
            got = enum.startup()
            assert len(got) == len(set(got))
            assert set(got) == path_set(g, s, t, k)

    def test_dynamic_deltas_match_bruteforce(self):
        rng = random.Random(33)
        for _ in range(25):
            g = make_random_graph(rng, max_edges=12)
            s, t, k = random_query(rng, g)
            enum = CsmDcgEnumerator(g, s, t, k)
            current = path_set(g, s, t, k)
            for _ in range(12):
                u, v = rng.sample(list(g.vertices()), 2)
                if g.has_edge(u, v):
                    result = enum.delete_edge(u, v)
                    fresh = path_set(g, s, t, k)
                    assert set(result.paths) == current - fresh
                else:
                    result = enum.insert_edge(u, v)
                    fresh = path_set(g, s, t, k)
                    assert set(result.paths) == fresh - current
                assert len(result.paths) == len(set(result.paths))
                current = fresh

    def test_rejects_equal_endpoints(self):
        with pytest.raises(ValueError):
            CsmDcgEnumerator(DynamicDiGraph([(0, 1)]), 1, 1, 3)

    def test_noop_updates(self, diamond):
        enum = CsmDcgEnumerator(diamond, 0, 3, 3)
        assert enum.insert_edge(0, 1).changed is False
        assert enum.delete_edge(7, 8).changed is False

    def test_apply_protocol(self, diamond):
        enum = CsmDcgEnumerator(diamond, 0, 3, 3)
        result = enum.apply(EdgeUpdate(0, 3, False))
        assert (0, 3) in result.paths

    def test_self_loop_updates(self, diamond):
        enum = CsmDcgEnumerator(diamond, 0, 3, 3)
        result = enum.insert_edge(1, 1)
        assert result.paths == []
        assert enum.counters_consistent()
        assert set(enum.startup()) == path_set(diamond, 0, 3, 3)
