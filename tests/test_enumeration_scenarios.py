"""Scenario tests with analytically known path counts."""

import math

import pytest

from repro.baselines.bruteforce import count_paths
from repro.core.enumerator import CpeEnumerator
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import grid_graph, layered_dag


class TestLayeredDags:
    @pytest.mark.parametrize(
        "layers", [[2], [3], [2, 2], [3, 2], [2, 3, 2], [4, 4]]
    )
    def test_path_count_is_product_of_layers(self, layers):
        graph, s, t = layered_dag(layers)
        expected = math.prod(layers)
        k = len(layers) + 1
        cpe = CpeEnumerator(graph, s, t, k)
        assert len(cpe.startup()) == expected

    def test_tight_hop_constraint_cuts_everything(self):
        graph, s, t = layered_dag([3, 3])
        cpe = CpeEnumerator(graph, s, t, 2)  # all paths have 3 hops
        assert cpe.startup() == []

    def test_deleting_one_middle_vertex_edge_scales_count(self):
        graph, s, t = layered_dag([3, 3])
        cpe = CpeEnumerator(graph, s, t, 3)
        # removing one layer-1 -> layer-2 edge kills exactly 1 path
        result = cpe.delete_edge(1, 4)
        assert len(result.paths) == 1
        assert len(cpe.startup()) == 8

    def test_adding_skip_edge_creates_shorter_paths(self):
        graph, s, t = layered_dag([2, 2])
        cpe = CpeEnumerator(graph, s, t, 3)
        assert len(cpe.startup()) == 4
        result = cpe.insert_edge(s, 3)  # s directly into layer 2
        assert set(result.paths) == {(0, 3, 5)}


class TestGrids:
    @pytest.mark.parametrize("rows,cols", [(2, 2), (3, 3), (2, 4), (4, 3)])
    def test_monotone_path_count_is_binomial(self, rows, cols):
        graph = grid_graph(rows, cols)
        s, t = 0, rows * cols - 1
        k = rows + cols  # enough for every monotone path
        expected = math.comb(rows + cols - 2, rows - 1)
        cpe = CpeEnumerator(graph, s, t, k)
        assert len(cpe.startup()) == expected
        assert count_paths(graph, s, t, k) == expected

    def test_grid_with_diagonal_shortcut(self):
        graph = grid_graph(3, 3)
        cpe = CpeEnumerator(graph, 0, 8, 4)
        before = len(cpe.startup())
        result = cpe.insert_edge(0, 4)  # diagonal into the center
        # new paths: 0 -> 4 followed by any monotone 4 ~> 8 path (2 of
        # them) ... each within the k=4 budget
        assert len(result.paths) == 2
        assert len(cpe.startup()) == before + 2


class TestCompleteBipartiteChains:
    def test_two_stage_chain(self):
        # s -> {a, b, c} -> {d, e} -> t : 6 paths of length 3
        edges = []
        mids1 = [1, 2, 3]
        mids2 = [4, 5]
        for m in mids1:
            edges.append((0, m))
            for w in mids2:
                edges.append((m, w))
        for w in mids2:
            edges.append((w, 6))
        cpe = CpeEnumerator(DynamicDiGraph(edges), 0, 6, 3)
        assert len(cpe.startup()) == 6

    def test_clique_path_counts(self):
        # complete digraph on 4 inner vertices between s and t
        inner = [1, 2, 3, 4]
        edges = [(0, v) for v in inner] + [(v, 5) for v in inner]
        edges += [(u, v) for u in inner for v in inner if u != v]
        graph = DynamicDiGraph(edges)
        # paths of length L use L-1 distinct inner vertices in order:
        # count = P(4, L-1) for L = 2..5
        expected = {
            2: 4,        # P(4,1)
            3: 4 * 3,    # P(4,2)
            4: 4 * 3 * 2,
            5: 4 * 3 * 2 * 1,
        }
        for k in range(2, 6):
            cpe = CpeEnumerator(graph.copy(), 0, 5, k)
            want = sum(expected[L] for L in range(2, k + 1))
            assert len(cpe.startup()) == want, f"k={k}"

    def test_update_on_clique(self):
        inner = [1, 2, 3]
        edges = [(0, v) for v in inner] + [(v, 4) for v in inner]
        edges += [(u, v) for u in inner for v in inner if u != v]
        graph = DynamicDiGraph(edges)
        cpe = CpeEnumerator(graph, 0, 4, 4)
        before = len(cpe.startup())
        # delete one inner-inner edge: kills paths using (1, 2) exactly:
        # 0,1,2,4 and 0,1,2,3,4 and 0,3,1,2,4
        result = cpe.delete_edge(1, 2)
        assert len(result.paths) == 3
        assert len(cpe.startup()) == before - 3
