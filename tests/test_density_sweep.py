"""Tests for the density-sweep experiment and the --save CLI option."""

from repro.cli import main
from repro.experiments import density_sweep
from repro.experiments.common import ExperimentConfig


def test_density_sweep_shape():
    cfg = ExperimentConfig(num_updates=10, k=5, seed=11)
    result = density_sweep.run(cfg, num_vertices=200, densities=(2.0, 5.0))
    assert result.series("d_out") == [2.0, 5.0]
    ratios = result.series("ratio")
    assert all(r >= 0 for r in ratios)


def test_density_sweep_advantage_grows_with_density():
    cfg = ExperimentConfig(num_updates=16, k=6, seed=7)
    result = density_sweep.run(
        cfg, num_vertices=400, densities=(2.0, 6.0)
    )
    sparse, dense = result.series("ratio")
    assert dense >= sparse


def test_cli_experiment_save(tmp_path, capsys):
    code = main(
        [
            "experiment", "density",
            "--updates", "6", "--seed", "3",
            "--save", str(tmp_path / "out"),
        ]
    )
    assert code == 0
    saved = tmp_path / "out" / "density.txt"
    assert saved.exists()
    assert "Density sweep" in saved.read_text()


def test_cli_experiment_save_csv(tmp_path, capsys):
    code = main(
        [
            "experiment", "table1",
            "--scale", "0.05",
            "--csv", "--save", str(tmp_path / "out"),
        ]
    )
    assert code == 0
    saved = tmp_path / "out" / "table1.csv"
    assert saved.read_text().startswith("Name,")
