"""CLI tests for ``repro explain`` and ``repro top``."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs import events
from repro.obs.trace import validate_chrome_trace
from repro.service.engine import PathQueryEngine
from repro.service.server import serve_in_thread


class TestExplainCommand:
    def test_text_format_auto_picks_a_pair(self, capsys):
        assert main(["explain", "RT", "--scale", "0.25", "--analyze"]) == 0
        captured = capsys.readouterr()
        assert "auto-picked query pair" in captured.err
        assert "EXPLAIN ANALYZE" in captured.out
        assert "dynamic cut decisions" in captured.out
        assert "invariant emit-total == path-total: ok" in captured.out

    def test_explicit_pair_without_analyze(self, capsys):
        assert main(["explain", "RT", "0", "5", "4", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN q(" in out
        assert "join pairs" not in out or "emitted" not in out

    def test_json_format(self, capsys):
        assert main([
            "explain", "RT", "0", "5", "4", "--scale", "0.25",
            "--analyze", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-explain/1"
        assert payload["query"] == {"s": 0, "t": 5, "k": 4}
        assert payload["invariant_ok"] is True

    def test_trace_format_writes_valid_chrome_trace(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        assert main([
            "explain", "RT", "0", "5", "4", "--scale", "0.25",
            "--analyze", "--format", "trace", "--out", str(out_file),
        ]) == 0
        assert f"wrote {out_file}" in capsys.readouterr().out
        payload = json.loads(out_file.read_text(encoding="utf-8"))
        assert validate_chrome_trace(payload) == []
        names = {event["name"] for event in payload["traceEvents"]}
        assert "explain.cut" in names
        assert payload["metadata"]["explain"]["schema"] == "repro-explain/1"

    def test_trace_format_leaves_obs_disabled(self, tmp_path):
        previous = obs.set_enabled(False)
        try:
            assert main([
                "explain", "RT", "0", "5", "4", "--scale", "0.25",
                "--format", "trace", "--out", str(tmp_path / "t.json"),
            ]) == 0
            assert not obs.enabled()
        finally:
            obs.set_enabled(previous)
            obs.reset()

    def test_unknown_dataset_fails(self, capsys):
        assert main(["explain", "NOPE"]) == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_s_without_t_fails(self, capsys):
        assert main(["explain", "RT", "0", "--scale", "0.25"]) == 2
        assert "give both s and t" in capsys.readouterr().err

    def test_missing_vertex_fails(self, capsys):
        assert main([
            "explain", "RT", "0", "999999", "4", "--scale", "0.25",
        ]) == 2
        assert "not in the graph" in capsys.readouterr().err


class TestTopCommand:
    @pytest.fixture
    def live_server(self, diamond):
        previous_obs = obs.set_enabled(True)
        obs.reset()
        previous_events = events.set_enabled(True)
        events.reset()
        engine = PathQueryEngine(diamond, default_k=3)
        handle = serve_in_thread(engine)
        try:
            yield handle
        finally:
            handle.stop()
            events.set_enabled(previous_events)
            events.reset()
            obs.set_enabled(previous_obs)
            obs.reset()

    def test_one_refresh_snapshot(self, live_server, capsys):
        from repro.service.client import ServiceClient

        with ServiceClient(live_server.host, live_server.port) as client:
            client.query(0, 3, 3)
            client.query(0, 3, 3)
        assert main([
            "top", "--host", live_server.host,
            "--port", str(live_server.port),
            "--iterations", "1", "--interval", "0.01", "--no-clear",
        ]) == 0
        out = capsys.readouterr().out
        assert "repro top —" in out
        assert "query latency" in out
        assert "cache hit rate 50.0%" in out
        assert "in-flight" in out
        assert "recent events" in out
        assert "query.finished" in out

    def test_multiple_refreshes_compute_qps(self, live_server, capsys):
        assert main([
            "top", "--host", live_server.host,
            "--port", str(live_server.port),
            "--iterations", "2", "--interval", "0.01", "--no-clear",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("repro top —") == 2
        # the first refresh has no previous sample to diff against
        assert "qps --" in out

    def test_connection_refused_is_an_error(self, capsys):
        assert main([
            "top", "--host", "127.0.0.1", "--port", "1",
            "--iterations", "1",
        ]) == 1
        assert "cannot connect" in capsys.readouterr().err

    def test_events_disabled_note(self, diamond, capsys):
        engine = PathQueryEngine(diamond, default_k=3)
        with serve_in_thread(engine) as handle:
            assert main([
                "top", "--host", handle.host, "--port", str(handle.port),
                "--iterations", "1", "--interval", "0.01", "--no-clear",
            ]) == 0
        assert "event log disabled" in capsys.readouterr().out
