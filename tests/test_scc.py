"""Tests for the SCC substrate."""

import random

from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import gnm_random_graph
from repro.graph.scc import (
    component_map,
    condensation,
    is_acyclic,
    strongly_connected_components,
)
from tests.conftest import make_random_graph


def brute_scc(graph):
    """SCCs via reachability closure (O(V * E), fine for small graphs)."""
    def reachable(src):
        seen = {src}
        stack = [src]
        while stack:
            v = stack.pop()
            for w in graph.out_neighbors(v):
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        return seen

    reach = {v: reachable(v) for v in graph.vertices()}
    components = set()
    for v in graph.vertices():
        comp = frozenset(
            w for w in reach[v] if v in reach[w]
        )
        components.add(comp)
    return {frozenset(c) for c in components}


class TestTarjan:
    def test_single_cycle(self):
        g = DynamicDiGraph([(0, 1), (1, 2), (2, 0)])
        comps = strongly_connected_components(g)
        assert [set(c) for c in comps] == [{0, 1, 2}]

    def test_dag_all_singletons(self):
        g = DynamicDiGraph([(0, 1), (1, 2), (0, 2)])
        comps = strongly_connected_components(g)
        assert all(len(c) == 1 for c in comps)
        assert len(comps) == 3

    def test_two_components_with_bridge(self):
        g = DynamicDiGraph([(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)])
        comps = {frozenset(c) for c in strongly_connected_components(g)}
        assert comps == {frozenset({0, 1}), frozenset({2, 3})}

    def test_reverse_topological_order(self):
        g = DynamicDiGraph([(0, 1), (1, 2)])
        comps = strongly_connected_components(g)
        # sinks come first in Tarjan's output
        assert comps.index({2}) < comps.index({0})

    def test_isolated_vertices(self):
        g = DynamicDiGraph(vertices=[7, 8])
        assert len(strongly_connected_components(g)) == 2

    def test_matches_bruteforce_randomized(self):
        rng = random.Random(8)
        for _ in range(40):
            g = make_random_graph(rng, max_edges=20)
            got = {
                frozenset(c) for c in strongly_connected_components(g)
            }
            assert got == brute_scc(g)

    def test_deep_chain_no_recursion_error(self):
        n = 5000
        g = DynamicDiGraph([(i, i + 1) for i in range(n - 1)])
        g.add_edge(n - 1, 0)  # one giant cycle
        comps = strongly_connected_components(g)
        assert len(comps) == 1
        assert len(comps[0]) == n


class TestDerived:
    def test_component_map_consistency(self):
        g = DynamicDiGraph([(0, 1), (1, 0), (1, 2)])
        mapping = component_map(g)
        assert mapping[0] == mapping[1]
        assert mapping[2] != mapping[0]

    def test_condensation_is_acyclic(self):
        rng = random.Random(9)
        for _ in range(20):
            g = make_random_graph(rng, max_edges=20)
            dag, mapping = condensation(g)
            assert is_acyclic(dag)
            for u, v in g.edges():
                if mapping[u] != mapping[v]:
                    assert dag.has_edge(mapping[u], mapping[v])

    def test_is_acyclic(self):
        assert is_acyclic(DynamicDiGraph([(0, 1), (1, 2)]))
        assert not is_acyclic(DynamicDiGraph([(0, 1), (1, 0)]))
        assert not is_acyclic(DynamicDiGraph([(0, 0)]))

    def test_random_gnm_component_count_sane(self):
        g = gnm_random_graph(40, 30, seed=10)
        comps = strongly_connected_components(g)
        assert sum(len(c) for c in comps) == 40
