"""Tests for :mod:`repro.obs.events` — the structured event log.

The ring buffer, the module facade's enabled gate, and the
correlation-id context are each exercised directly; the service-side
wiring (who emits what, and when) lives in tests/test_service_events.py.
"""

import threading

import pytest

from repro.obs import events
from repro.obs.events import Event, EventLog


@pytest.fixture(autouse=True)
def _clean_event_state():
    previous = events.set_enabled(False)
    events.reset()
    previous_corr = events.set_correlation_id(None)
    yield
    events.set_enabled(previous)
    events.set_correlation_id(previous_corr)
    events.reset()


class TestEventLog:
    def test_emit_and_tail_oldest_first(self):
        log = EventLog(capacity=8)
        for n in range(3):
            log.emit(events.QUERY_STARTED, op=f"op{n}")
        tail = log.tail(10)
        assert [e.seq for e in tail] == [0, 1, 2]
        assert [e.fields["op"] for e in tail] == ["op0", "op1", "op2"]

    def test_ring_drops_oldest_and_counts_them(self):
        log = EventLog(capacity=4)
        for n in range(6):
            log.emit(events.CACHE_HIT, n=n)
        snapshot = log.snapshot()
        assert snapshot["total_emitted"] == 6
        assert snapshot["dropped"] == 2
        assert [e.seq for e in log.tail(10)] == [2, 3, 4, 5]

    def test_tail_limit(self):
        log = EventLog(capacity=8)
        for n in range(5):
            log.emit(events.CACHE_MISS, n=n)
        assert [e.seq for e in log.tail(2)] == [3, 4]

    def test_as_dict_flattens_fields(self):
        log = EventLog(capacity=4)
        log.emit(events.UPDATE_APPLIED, corr_id="r000007", u=1, v=2)
        payload = log.tail(1)[0].as_dict()
        assert payload["kind"] == events.UPDATE_APPLIED
        assert payload["corr_id"] == "r000007"
        assert payload["u"] == 1 and payload["v"] == 2
        assert "fields" not in payload

    def test_as_dict_omits_unset_corr_id(self):
        log = EventLog(capacity=4)
        log.emit(events.QUERY_ADMITTED)
        assert "corr_id" not in log.tail(1)[0].as_dict()

    def test_events_are_frozen(self):
        log = EventLog(capacity=4)
        log.emit(events.QUERY_ADMITTED)
        event = log.tail(1)[0]
        assert isinstance(event, Event)
        with pytest.raises(AttributeError):
            event.kind = "other"

    def test_clear_keeps_capacity(self):
        log = EventLog(capacity=4)
        log.emit(events.QUERY_ADMITTED)
        log.clear()
        assert log.tail(10) == []
        assert log.capacity == 4

    def test_concurrent_emits_keep_unique_sequence_numbers(self):
        log = EventLog(capacity=4096)
        per_thread = 100

        def worker():
            for _ in range(per_thread):
                log.emit(events.CACHE_HIT)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        tail = log.tail(10_000)
        assert log.total_emitted == 8 * per_thread
        seqs = [e.seq for e in tail]
        assert len(seqs) == len(set(seqs))
        assert seqs == sorted(seqs)


class TestModuleFacade:
    def test_disabled_emit_is_a_noop(self):
        events.emit(events.QUERY_STARTED, op="query")
        assert events.tail() == []
        assert events.log().total_emitted == 0

    def test_enable_disable_round_trip(self):
        assert events.set_enabled(True) is False
        try:
            events.emit(events.QUERY_STARTED, op="query")
            assert len(events.tail()) == 1
        finally:
            assert events.set_enabled(False) is True

    def test_tail_returns_dicts(self):
        events.set_enabled(True)
        events.emit(events.CACHE_EVICT, s=1, t=2, k=3, freed_bytes=10)
        (payload,) = events.tail()
        assert payload["kind"] == events.CACHE_EVICT
        assert payload["freed_bytes"] == 10

    def test_every_kind_constant_is_listed(self):
        assert events.QUERY_ADMITTED in events.EVENT_KINDS
        assert events.DEADLINE_EXCEEDED in events.EVENT_KINDS
        assert len(set(events.EVENT_KINDS)) == len(events.EVENT_KINDS)


class TestCorrelation:
    def test_ambient_corr_id_is_stamped(self):
        events.set_enabled(True)
        previous = events.set_correlation_id("r4242")
        try:
            events.emit(events.QUERY_STARTED, op="query")
        finally:
            events.set_correlation_id(previous)
        assert events.tail()[0]["corr_id"] == "r4242"

    def test_explicit_corr_id_wins_over_ambient(self):
        events.set_enabled(True)
        previous = events.set_correlation_id("ambient")
        try:
            events.emit(events.QUERY_STARTED, corr_id="explicit", op="query")
        finally:
            events.set_correlation_id(previous)
        assert events.tail()[0]["corr_id"] == "explicit"

    def test_set_correlation_id_returns_previous(self):
        first = events.set_correlation_id("one")
        second = events.set_correlation_id("two")
        assert second == "one"
        events.set_correlation_id(first)
        assert events.correlation_id() == first

    def test_new_correlation_ids_are_unique(self):
        minted = {events.new_correlation_id() for _ in range(50)}
        assert len(minted) == 50

    def test_corr_id_is_thread_local(self):
        events.set_correlation_id("main-thread")
        seen = {}

        def worker():
            seen["before"] = events.correlation_id()
            events.set_correlation_id("worker-thread")
            seen["after"] = events.correlation_id()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["before"] is None
        assert seen["after"] == "worker-thread"
        assert events.correlation_id() == "main-thread"
