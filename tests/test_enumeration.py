"""Tests for Algorithm 1 (full enumeration) and the delta join."""

import random

from repro.baselines.bruteforce import path_set
from repro.core.construction import build_index
from repro.core.enumeration import count_full, enumerate_delta, enumerate_full
from repro.core.index import PathBuckets
from repro.graph.digraph import DynamicDiGraph
from tests.conftest import make_random_graph, random_query


class TestFullEnumeration:
    def test_diamond(self, diamond):
        result = build_index(diamond, 0, 3, 2)
        assert set(enumerate_full(result.index)) == {
            (0, 3), (0, 1, 3), (0, 2, 3)
        }

    def test_hop_constraint_respected(self, two_hop_chain):
        result = build_index(two_hop_chain, 0, 5, 4)
        assert list(enumerate_full(result.index)) == []
        result = build_index(two_hop_chain, 0, 5, 5)
        assert list(enumerate_full(result.index)) == [(0, 1, 2, 3, 4, 5)]

    def test_no_duplicates_on_random_graphs(self):
        rng = random.Random(11)
        for _ in range(40):
            g = make_random_graph(rng)
            s, t, k = random_query(rng, g)
            paths = list(enumerate_full(build_index(g, s, t, k).index))
            assert len(paths) == len(set(paths))

    def test_matches_bruteforce(self, paper_figure2):
        for k in range(1, 7):
            result = build_index(paper_figure2, 0, 9, k)
            assert set(enumerate_full(result.index)) == path_set(
                paper_figure2, 0, 9, k
            )

    def test_count_full(self, diamond):
        result = build_index(diamond, 0, 3, 2)
        assert count_full(result.index) == 3

    def test_simplicity_check_rejects_overlapping_partials(self):
        # 0 -> 1 -> 2 and 2 -> 1 -> 3 share vertex 1: must not join
        g = DynamicDiGraph([(0, 1), (1, 2), (2, 1), (1, 3)])
        result = build_index(g, 0, 3, 4)
        paths = set(enumerate_full(result.index))
        assert (0, 1, 2, 1, 3) not in paths
        assert (0, 1, 3) in paths


class TestDeltaJoin:
    def test_delta_left_joins_full_right(self, diamond):
        result = build_index(diamond, 0, 3, 2)
        delta_left = PathBuckets()
        delta_left.add(1, (0, 1))  # pretend (0, 1) is newly added
        got = set(
            enumerate_delta(result.index, delta_left, PathBuckets())
        )
        assert got == {(0, 1, 3)}

    def test_delta_right_skips_delta_left_pairs(self, diamond):
        result = build_index(diamond, 0, 3, 2)
        delta_left = PathBuckets()
        delta_left.add(1, (0, 1))
        delta_right = PathBuckets()
        delta_right.add(1, (1, 3))
        got = list(
            enumerate_delta(result.index, delta_left, delta_right)
        )
        # (0,1)x(1,3) must appear exactly once (via the delta-left term)
        assert got.count((0, 1, 3)) == 1

    def test_direct_edge_flag(self, diamond):
        result = build_index(diamond, 0, 3, 2)
        got = list(
            enumerate_delta(
                result.index, PathBuckets(), PathBuckets(), True
            )
        )
        assert got == [(0, 3)]

    def test_empty_deltas_yield_nothing(self, diamond):
        result = build_index(diamond, 0, 3, 2)
        assert (
            list(enumerate_delta(result.index, PathBuckets(), PathBuckets()))
            == []
        )
