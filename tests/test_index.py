"""Unit tests for the partial path index containers."""

import pytest

from repro.core.index import PartialPathIndex, PathBuckets
from repro.core.plan import balanced_plan


class TestPathBuckets:
    def test_add_and_contains(self):
        b = PathBuckets()
        assert b.add(2, (0, 1, 2)) is True
        assert b.contains(2, (0, 1, 2))
        assert len(b) == 1

    def test_add_duplicate(self):
        b = PathBuckets()
        b.add(2, (0, 1, 2))
        assert b.add(2, (0, 1, 2)) is False
        assert len(b) == 1

    def test_remove(self):
        b = PathBuckets()
        b.add(2, (0, 1, 2))
        assert b.remove(2, (0, 1, 2)) is True
        assert not b.contains(2, (0, 1, 2))
        assert len(b) == 0

    def test_remove_missing(self):
        b = PathBuckets()
        assert b.remove(2, (0, 1, 2)) is False
        b.add(3, (0, 3))
        assert b.remove(3, (0, 1, 3)) is False

    def test_remove_cleans_empty_buckets(self):
        b = PathBuckets()
        b.add(1, (0, 1))
        b.remove(1, (0, 1))
        assert list(b.lengths()) == []

    def test_bucket_by_length(self):
        b = PathBuckets()
        b.add(1, (0, 1))
        b.add(2, (0, 1, 2))
        assert set(b.bucket(1)) == {1}
        assert set(b.bucket(2)) == {2}
        assert b.bucket(9) == {}

    def test_at_vertex(self):
        b = PathBuckets()
        b.add(5, (0, 5))
        b.add(5, (0, 1, 5))
        b.add(6, (0, 6))
        entries = sorted(b.at_vertex(5))
        assert entries == [(1, (0, 5)), (2, (0, 1, 5))]

    def test_entries_and_paths(self):
        b = PathBuckets()
        b.add(1, (0, 1))
        b.add(2, (0, 1, 2))
        assert set(b.paths()) == {(0, 1), (0, 1, 2)}
        assert set(b.entries()) == {(1, 1, (0, 1)), (2, 2, (0, 1, 2))}

    def test_count_at_length(self):
        b = PathBuckets()
        b.add(1, (0, 1))
        b.add(2, (0, 2))
        assert b.count_at_length(1) == 2
        assert b.count_at_length(3) == 0

    def test_equality_normalizes_empty_buckets(self):
        a = PathBuckets()
        b = PathBuckets()
        a.add(1, (0, 1))
        a.remove(1, (0, 1))
        assert a == b

    def test_level_dict_bulk_writes(self):
        b = PathBuckets()
        level = b.level_dict(2)
        level[3] = {(0, 1, 3)}
        b.note_added(1)
        assert b.contains(3, (0, 1, 3))
        assert len(b) == 1


class TestPartialPathIndex:
    def make(self, k=4):
        return PartialPathIndex("s", "t", k, balanced_plan(k))

    def test_rejects_equal_endpoints(self):
        with pytest.raises(ValueError):
            PartialPathIndex(1, 1, 3, balanced_plan(3))

    def test_rejects_mismatched_plan(self):
        with pytest.raises(ValueError):
            PartialPathIndex(0, 1, 4, balanced_plan(3))

    def test_left_keyed_by_last_vertex(self):
        idx = self.make()
        idx.add_left(("s", "a", "b"))
        assert idx.has_left(("s", "a", "b"))
        assert idx.left.contains("b", ("s", "a", "b"))
        assert idx.remove_left(("s", "a", "b"))
        assert not idx.has_left(("s", "a", "b"))

    def test_right_keyed_by_first_vertex(self):
        idx = self.make()
        idx.add_right(("c", "d", "t"))
        assert idx.has_right(("c", "d", "t"))
        assert idx.right.contains("c", ("c", "d", "t"))
        assert idx.remove_right(("c", "d", "t"))

    def test_memory_stats(self):
        idx = self.make()
        idx.add_left(("s", "a"))
        idx.add_right(("b", "t"))
        idx.add_right(("c", "b", "t"))
        stats = idx.memory_stats()
        assert stats.left_paths == 1
        assert stats.right_paths == 2
        assert stats.path_count == 3
        assert stats.vertex_slots == 2 + 2 + 3
        assert stats.approx_bytes == 8 * 7 + 16 * 3

    def test_repr(self):
        idx = self.make()
        text = repr(idx)
        assert "PartialPathIndex" in text
        assert "k=4" in text
