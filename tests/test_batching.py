"""Unit tests for :mod:`repro.batching`: grouping, shared construction,
and the gather window.

The load-bearing property throughout is *equivalence*: whatever the
grouping decides, a batch's answers must be exactly what sequential
per-query execution would produce (the server-level byte-identity gate
is in ``tests/test_service_batch.py``).
"""

import asyncio
import random

import pytest

from repro.batching import (
    GatherWindow,
    GroupingPlan,
    SharedConstructionEngine,
    detect_groups,
)
from repro.core.construction import build_index
from repro.core.distance import DistanceMap
from repro.core.enumerator import CpeEnumerator
from repro.core.monitor import MultiPairMonitor
from repro.graph.digraph import DynamicDiGraph
from repro.service.cache import IndexCache
from tests.conftest import make_random_graph


class TestDetectGroups:
    def test_singletons_when_nothing_overlaps(self):
        plan = detect_groups([(0, 1, 3), (2, 3, 3), (4, 5, 4)])
        assert len(plan.groups) == 3
        assert all(g.is_singleton for g in plan.groups)
        assert plan.bfs_saved == 0
        assert plan.grouped_members == 0

    def test_shared_source_hub_groups_members(self):
        plan = detect_groups([(0, 1, 3), (0, 2, 3), (5, 6, 3)])
        assert len(plan.groups) == 2
        group = plan.group_of(0)
        assert group.members == (0, 1)
        assert (0, 3) in group.shared_source_hubs
        assert not group.shared_target_hubs
        # two members share one forward BFS: 3 builds instead of 4
        assert group.bfs_builds == 3
        assert plan.bfs_saved == 1

    def test_same_vertex_different_k_is_not_a_shared_hub(self):
        plan = detect_groups([(0, 1, 3), (0, 2, 4)])
        assert len(plan.groups) == 2
        assert all(g.is_singleton for g in plan.groups)

    def test_transitive_closure_over_mixed_hubs(self):
        # A and B share source 0; B and C share target 9 — one group.
        plan = detect_groups([(0, 1, 3), (0, 9, 3), (7, 9, 3)])
        assert len(plan.groups) == 1
        group = plan.groups[0]
        assert group.members == (0, 1, 2)
        assert (0, 3) in group.shared_source_hubs
        assert (9, 3) in group.shared_target_hubs

    def test_duplicates_share_both_hubs_but_count_distinct_once(self):
        plan = detect_groups([(0, 1, 3), (0, 1, 3), (0, 1, 3)])
        assert len(plan.groups) == 1
        group = plan.groups[0]
        assert group.distinct == ((0, 1, 3),)
        # one distinct triple: its hubs are not shared with any *other*
        # distinct triple, so no master BFS is worth building
        assert not group.shared_source_hubs
        assert not group.shared_target_hubs
        assert plan.distinct_triples == 1

    def test_deterministic_and_order_preserving(self):
        rng = random.Random(11)
        triples = [
            (rng.randrange(6), 10 + rng.randrange(6), rng.randrange(2, 5))
            for _ in range(40)
        ]
        plans = [detect_groups(triples) for _ in range(2)]
        assert plans[0].describe() == plans[1].describe()
        assert [g.members for g in plans[0].groups] == [
            g.members for g in plans[1].groups
        ]
        # every member lands in exactly one group, in arrival order
        seen = [m for g in plans[0].groups for m in g.members]
        assert sorted(seen) == list(range(len(triples)))
        assert isinstance(plans[0], GroupingPlan)

    def test_bfs_accounting_adds_up(self):
        triples = [(0, 1, 3), (0, 2, 3), (4, 2, 3), (8, 9, 2)]
        plan = detect_groups(triples)
        assert plan.bfs_builds + plan.bfs_saved == 2 * plan.distinct_triples


class TestSharedMasterInjection:
    """`build_index` fed cloned masters equals the self-built index."""

    def test_injected_clones_reproduce_paths(self):
        rng = random.Random(5)
        for _ in range(10):
            graph = make_random_graph(rng, n_lo=6, n_hi=9, max_edges=20)
            vertices = list(graph.vertices())
            s, t = rng.sample(vertices, 2)
            k = rng.randint(2, 5)
            baseline = CpeEnumerator(graph, s, t, k).startup()
            dist_s = DistanceMap(graph, s, horizon=k)
            dist_t = DistanceMap(graph.reverse_view(), t, horizon=k)
            build = build_index(
                graph, s, t, k,
                dist_s=dist_s.clone(), dist_t=dist_t.clone(),
            )
            injected = CpeEnumerator.from_build(graph, build).startup()
            assert injected == baseline

    def test_clone_is_independent_of_the_master(self):
        graph = DynamicDiGraph([(0, 1), (1, 2), (2, 3)])
        master = DistanceMap(graph, 0, horizon=3)
        clone = master.clone()
        graph.add_edge(0, 2)
        master.relax_insert(0, 2)
        assert master.get(2) == 1
        assert clone.get(2) == 2  # untouched by the master's repair


class TestSharedConstructionEngine:
    def _graph(self):
        return DynamicDiGraph(
            [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3), (3, 4), (1, 4)]
        )

    def test_batch_answers_equal_direct_enumeration(self):
        graph = self._graph()
        engine = SharedConstructionEngine(graph, IndexCache(graph))
        triples = [(0, 3, 3), (0, 4, 3), (0, 3, 3), (1, 4, 2)]
        result = engine.run(triples)
        assert len(result.answers) == len(triples)
        for triple, answer in zip(triples, result.answers):
            s, t, k = triple
            assert answer.paths == CpeEnumerator(graph, s, t, k).startup()

    def test_stats_reflect_sharing_and_memo(self):
        graph = self._graph()
        engine = SharedConstructionEngine(graph, IndexCache(graph))
        result = engine.run([(0, 3, 3), (0, 4, 3), (0, 3, 3)])
        stats = result.stats
        assert stats.members == 3
        assert stats.distinct_triples == 2
        assert stats.memo_answers == 1  # the duplicate (0, 3, 3)
        assert stats.shared_bfs_built >= 1  # the shared (0, 3) source hub
        totals = engine.stats()
        assert totals["batches"] == 1
        assert totals["members"] == 3

    def test_watched_members_answer_from_the_monitor(self):
        graph = self._graph()
        monitor = MultiPairMonitor(graph, k=3)
        monitor.watch(0, 3)
        engine = SharedConstructionEngine(
            graph, IndexCache(graph), monitor=monitor
        )
        result = engine.run([(0, 3, 3), (0, 4, 3)])
        assert result.answers[0].source == "watched"
        assert set(result.answers[0].paths) == set(
            CpeEnumerator(graph, 0, 3, 3).startup()
        )
        assert result.answers[1].source != "watched"
        assert result.stats.watched_answers == 1

    @pytest.mark.parametrize("bad", [(1, 1, 3), (0, 1, -1)])
    def test_invalid_members_raise_value_error(self, bad):
        graph = self._graph()
        engine = SharedConstructionEngine(graph, IndexCache(graph))
        with pytest.raises(ValueError):
            engine.run([(0, 3, 3), bad])


class TestGatherWindow:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_one_flush_collects_concurrent_submits(self):
        batches = []

        async def scenario():
            async def flush(batch):
                batches.append(batch)
                for member in batch:
                    member.future.set_result(member.payload * 10)

            window = GatherWindow(0.02, flush)
            results = await asyncio.gather(
                *(window.submit(i, None) for i in range(4))
            )
            await window.close()
            return results

        results = self._run(scenario())
        assert results == [0, 10, 20, 30]
        assert len(batches) == 1
        assert [m.payload for m in batches[0]] == [0, 1, 2, 3]
        assert all(m.deadline is None for m in batches[0])

    def test_close_flushes_pending_and_later_submits_fire_immediately(self):
        sizes = []

        async def scenario():
            async def flush(batch):
                sizes.append(len(batch))
                for member in batch:
                    member.future.set_result(None)

            window = GatherWindow(30.0, flush)  # would never fire on its own
            pending = asyncio.ensure_future(window.submit("early", None))
            await asyncio.sleep(0)
            await window.close()
            await pending
            assert window.closed
            await window.submit("late", None)  # still answered, just unbatched
            stats = window.stats()
            assert stats["pending"] == 0
            return stats

        stats = self._run(scenario())
        assert sizes == [1, 1]
        assert stats["flushed_batches"] == 2
        assert stats["flushed_members"] == 2

    def test_flush_exception_does_not_wedge_the_window(self):
        async def scenario():
            calls = []

            async def flush(batch):
                calls.append(len(batch))
                if len(calls) == 1:
                    for member in batch:
                        member.future.set_exception(RuntimeError("boom"))
                    raise RuntimeError("boom")
                for member in batch:
                    member.future.set_result("ok")

            window = GatherWindow(0.01, flush)
            with pytest.raises(RuntimeError):
                await window.submit(1, None)
            second = await window.submit(2, None)
            await window.close()
            return calls, second

        calls, second = self._run(scenario())
        assert calls == [1, 1]
        assert second == "ok"
