"""Golden-structure tests for ``repro profile`` (and the obs state it
must leave untouched)."""

import json

from repro import obs
from repro.cli import main


def test_profile_prints_per_stage_breakdown(capsys):
    assert main(["profile", "RT", "--scale", "0.25"]) == 0
    out = capsys.readouterr().out
    # golden structure: title, table header, the three stage families,
    # and the counters block
    assert "== profile RT scale 0.25 k 6:" in out
    assert "stage" in out and "total ms" in out and "p99 ms" in out
    assert "construction.build" in out
    assert "construction.prep" in out
    assert "enumeration.full" in out
    assert "maintenance." in out  # insert and/or delete repairs ran
    assert "counters:" in out
    assert "construction.builds" in out
    assert "enumeration.paths" in out


def test_profile_json_mode_emits_snapshot(capsys):
    assert main(["profile", "RT", "--scale", "0.25", "--json"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert set(snapshot) >= {"counters", "gauges", "histograms"}
    histograms = snapshot["histograms"]
    assert "construction.build.seconds" in histograms
    assert "enumeration.full.seconds" in histograms
    summary = histograms["construction.build.seconds"]
    assert summary["count"] >= 1
    assert {"p50", "p95", "p99"} <= set(summary)
    assert snapshot["counters"]["construction.builds"] >= 1


def test_profile_format_json_emits_bench_payload(capsys):
    assert main(["profile", "RT", "--scale", "0.25", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro-bench/1"
    assert payload["benchmark"] == "profile"
    assert payload["config"]["dataset"] == "RT"
    assert payload["config"]["scale"] == 0.25
    metrics = payload["metrics"]
    assert "construction_build_seconds_total_s" in metrics or (
        "construction_build_total_s" in metrics
    )
    for metric in metrics.values():
        assert set(metric) == {"value", "unit", "direction"}
        assert metric["direction"] in ("lower", "higher")
    assert metrics["initial_paths"]["unit"] == "paths"


def test_profile_legacy_json_flag_still_wins(capsys):
    # --json predates --format and emits the raw snapshot; it must keep
    # doing so even when both flags appear.
    assert main([
        "profile", "RT", "--scale", "0.25", "--json", "--format", "json",
    ]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert set(snapshot) >= {"counters", "gauges", "histograms"}


def test_profile_respects_query_and_update_knobs(capsys):
    assert main([
        "profile", "RT", "--scale", "0.25",
        "--queries", "2", "--updates", "6", "--seed", "11",
    ]) == 0
    out = capsys.readouterr().out
    assert "2 queries" in out


def test_profile_leaves_obs_disabled(capsys):
    previous = obs.set_enabled(False)
    try:
        assert main(["profile", "RT", "--scale", "0.25"]) == 0
        assert not obs.enabled()
    finally:
        obs.set_enabled(previous)
        obs.reset()


def test_profile_unknown_dataset_fails(capsys):
    assert main(["profile", "NOPE"]) == 2
    assert "unknown dataset" in capsys.readouterr().err
