"""Unit tests for the dataset analogue registry."""

import pytest

from repro.graph import datasets


def test_fourteen_datasets_registered():
    assert len(datasets.DATASET_ORDER) == 14
    assert datasets.DATASET_ORDER[0] == "RT"
    assert datasets.DATASET_ORDER[-1] == "TW"


def test_undirected_subset_matches_paper():
    # the paper evaluates CSM* on AM, SK and LJ only
    assert set(datasets.UNDIRECTED_DATASETS) == {"AM", "SK", "LJ"}


def test_spec_lookup():
    spec = datasets.spec("WG")
    assert spec.full_name == "web-google"
    assert spec.paper.num_vertices == 875_000


def test_spec_unknown():
    with pytest.raises(KeyError, match="unknown dataset"):
        datasets.spec("nope")


def test_load_rejects_bad_scale():
    with pytest.raises(ValueError):
        datasets.load("RT", 0)


@pytest.mark.parametrize("name", datasets.DATASET_ORDER)
def test_every_dataset_loads_small(name):
    graph = datasets.load(name, scale=0.05)
    assert graph.num_vertices > 0
    assert graph.num_edges > 0


def test_load_deterministic():
    a = datasets.load("EP", 0.1)
    b = datasets.load("EP", 0.1)
    assert a == b


def test_undirected_datasets_are_symmetric():
    for name in datasets.UNDIRECTED_DATASETS:
        graph = datasets.load(name, 0.05)
        for u, v in graph.edges():
            assert graph.has_edge(v, u), f"{name}: missing mirror of {(u, v)}"


def test_size_ordering_preserved():
    sizes = [datasets.load(n, 0.1).num_vertices for n in ("RT", "WG", "TW")]
    assert sizes[0] < sizes[1] < sizes[2]


def test_load_all_subset():
    graphs = datasets.load_all(0.05, names=("RT", "TS"))
    assert set(graphs) == {"RT", "TS"}


def test_scale_grows_graph():
    small = datasets.load("EP", 0.1)
    large = datasets.load("EP", 0.3)
    assert large.num_vertices > small.num_vertices
