"""Tests for :mod:`repro.obs.explain` — per-query EXPLAIN/ANALYZE.

The reports must agree with the algorithms they describe: the recorded
cut sums to k, the per-pair emit counts sum to the enumerated path
total (the ANALYZE invariant), and the frontier-cost estimates bound
the measured join output from above (they ignore disjointness).
"""

import json

import pytest

from repro import obs
from repro.core.enumerator import CpeEnumerator
from repro.obs.explain import ExplainRecord, explain_query, recording, active
from repro.obs.trace import validate_chrome_trace
from repro.graph.digraph import DynamicDiGraph, EdgeUpdate


@pytest.fixture
def grid():
    """A 4x4 grid digraph (edges right and down): many 0->15 paths."""
    graph = DynamicDiGraph()
    for row in range(4):
        for col in range(4):
            v = row * 4 + col
            if col < 3:
                graph.add_edge(v, v + 1)
            if row < 3:
                graph.add_edge(v, v + 4)
    return graph


class TestExplain:
    def test_split_sums_to_k(self, grid):
        report = explain_query(grid, 0, 15, 6)
        l, r = report.record.split
        assert l + r == 6
        assert report.record.plan_pairs[0] == (1, 1)

    def test_buckets_and_levels_are_recorded(self, grid):
        record = explain_query(grid, 0, 15, 6).record
        assert record.left_buckets and record.right_buckets
        assert any(level.side == "left" for level in record.levels)
        assert any(level.side == "right" for level in record.levels)
        for level in record.levels:
            assert level.pruned == level.expansions - level.admitted
            assert level.pruned >= 0

    def test_cut_steps_carry_frontier_sizes(self, grid):
        record = explain_query(grid, 0, 15, 6).record
        assert record.cut_steps, "Opt. 2 made no recorded decisions"
        for step in record.cut_steps:
            assert step.side in ("left", "right")
            assert step.left_frontier >= 0 and step.right_frontier >= 0

    def test_explain_without_analyze_leaves_invariant_open(self, grid):
        record = explain_query(grid, 0, 15, 6).record
        assert record.total_paths is None
        assert record.invariant_ok() is None
        assert record.join_pairs == []

    def test_analyze_invariant_holds(self, grid):
        report = explain_query(grid, 0, 15, 6, analyze=True)
        record = report.record
        assert record.invariant_ok() is True
        assert record.emitted_total() == record.total_paths
        expected = len(CpeEnumerator(grid, 0, 15, 6).startup())
        assert record.total_paths == expected

    def test_analyze_invariant_holds_with_direct_edge(self, diamond):
        report = explain_query(diamond, 0, 3, 3, analyze=True)
        record = report.record
        assert record.direct_edge is True
        assert record.invariant_ok() is True
        assert record.total_paths == 3

    def test_estimates_bound_measured_output(self, grid):
        report = explain_query(grid, 0, 15, 6, analyze=True)
        measured = {(p.i, p.j): p.emitted for p in report.record.join_pairs}
        for estimate in report.estimates:
            pair = (estimate["i"], estimate["j"])
            assert estimate["est_output"] >= measured.get(pair, 0)

    def test_no_paths_query(self):
        graph = DynamicDiGraph([(0, 1), (2, 3)])
        report = explain_query(graph, 0, 3, 4, analyze=True)
        assert report.record.total_paths == 0
        assert report.record.invariant_ok() is True

    def test_rejects_bad_query(self, grid):
        with pytest.raises(ValueError):
            explain_query(grid, 0, 0, 4)


class TestRecordingContext:
    def test_recording_sets_and_restores_active(self, grid):
        assert active() is None
        with recording() as record:
            assert active() is record
        assert active() is None

    def test_maintenance_is_recorded(self, diamond):
        cpe = CpeEnumerator(diamond, 0, 3, 3)
        cpe.startup()
        with recording() as record:
            cpe.apply(EdgeUpdate(1, 2, True))
            cpe.apply(EdgeUpdate(1, 2, False))
        kinds = [m.kind for m in record.maintenance]
        assert kinds == ["insert", "delete"]

    def test_plain_calls_record_nothing(self, grid):
        before = ExplainRecord()
        CpeEnumerator(grid, 0, 15, 6).startup()
        assert active() is None
        assert before.cut_steps == []


class TestReportRendering:
    def test_to_dict_schema(self, grid):
        payload = explain_query(grid, 0, 15, 6, analyze=True).to_dict()
        assert payload["schema"] == "repro-explain/1"
        assert payload["query"] == {"s": 0, "t": 15, "k": 6}
        assert payload["analyze"] is True
        assert payload["graph"]["num_vertices"] == 16
        assert payload["invariant_ok"] is True
        assert sum(payload["cut"]["split"]) == 6
        json.dumps(payload)  # must be JSON-serializable as-is

    def test_render_text_mentions_the_decisions(self, grid):
        text = explain_query(grid, 0, 15, 6, analyze=True).render_text()
        assert "EXPLAIN ANALYZE" in text
        assert "dynamic cut decisions" in text
        assert "Opt. 1" in text
        assert "join pairs" in text
        assert "invariant emit-total == path-total: ok" in text

    def test_chrome_trace_round_trip(self, grid):
        previous = obs.set_enabled(True)
        try:
            with obs.tracing() as buffer:
                report = explain_query(grid, 0, 15, 6, analyze=True)
        finally:
            obs.set_enabled(previous)
        payload = report.to_chrome_trace(buffer)
        assert validate_chrome_trace(payload) == []
        names = {event["name"] for event in payload["traceEvents"]}
        assert "explain.cut" in names
        assert "explain.level" in names
        assert "explain.join" in names
        assert "construction.build" in names
        assert payload["metadata"]["explain"]["schema"] == "repro-explain/1"

    def test_trace_instants_carry_counter_args(self, grid):
        previous = obs.set_enabled(True)
        try:
            with obs.tracing() as buffer:
                report = explain_query(grid, 0, 15, 6, analyze=True)
        finally:
            obs.set_enabled(previous)
        payload = report.to_chrome_trace(buffer)
        levels = [e for e in payload["traceEvents"]
                  if e["name"] == "explain.level"]
        assert levels
        for event in levels:
            assert {"side", "level", "expansions", "admitted"} <= set(
                event["args"]
            )
        joins = [e for e in payload["traceEvents"]
                 if e["name"] == "explain.join"]
        assert sum(e["args"]["emitted"] for e in joins) + int(
            report.record.direct_edge
        ) == report.record.total_paths
