"""Tests for index maintenance under edge deletion (Algorithm 5 + removals)."""

import random

from repro.baselines.bruteforce import path_set
from repro.core.enumerator import CpeEnumerator
from repro.graph.digraph import DynamicDiGraph
from tests.conftest import make_random_graph, random_query
from tests.test_maintenance_insert import assert_index_matches_fresh


class TestSimpleScenarios:
    def test_delete_breaks_path(self):
        g = DynamicDiGraph([(0, 1), (1, 2), (2, 3)])
        cpe = CpeEnumerator(g, 0, 3, 3)
        assert cpe.startup() == [(0, 1, 2, 3)]
        result = cpe.delete_edge(1, 2)
        assert set(result.paths) == {(0, 1, 2, 3)}
        assert cpe.startup() == []
        assert_index_matches_fresh(cpe)

    def test_delete_direct_edge(self):
        g = DynamicDiGraph([(0, 1), (1, 2), (0, 2)])
        cpe = CpeEnumerator(g, 0, 2, 2)
        result = cpe.delete_edge(0, 2)
        assert (0, 2) in result.paths
        assert cpe.index.direct_edge is False
        assert set(cpe.startup()) == {(0, 1, 2)}

    def test_delete_missing_edge_noop(self):
        g = DynamicDiGraph([(0, 1)])
        cpe = CpeEnumerator(g, 0, 1, 2)
        result = cpe.delete_edge(5, 6)
        assert result.changed is False
        assert result.paths == []

    def test_delete_reports_each_path_once(self):
        # deleting a middle edge shared by several paths
        g = DynamicDiGraph(
            [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (4, 6), (5, 7), (6, 7)]
        )
        cpe = CpeEnumerator(g, 0, 7, 5)
        before = set(cpe.startup())
        result = cpe.delete_edge(3, 4)
        assert len(result.paths) == len(set(result.paths))
        assert set(result.paths) == before  # every path used (3, 4)
        assert cpe.startup() == []

    def test_delete_then_reinsert_restores(self):
        g = DynamicDiGraph([(0, 1), (1, 2), (0, 2)])
        cpe = CpeEnumerator(g, 0, 2, 3)
        before = set(cpe.startup())
        deleted = cpe.delete_edge(1, 2)
        restored = cpe.insert_edge(1, 2)
        assert set(deleted.paths) == set(restored.paths)
        assert set(cpe.startup()) == before
        assert_index_matches_fresh(cpe)


class TestTighteningEffects:
    def test_tightening_removes_admissibility(self):
        # deleting the shortcut pushes Dist_t back up: partial paths that
        # relied on it must leave the index
        g = DynamicDiGraph(
            [(0, 1), (1, 2), (2, 6), (2, 3), (3, 4), (4, 5), (5, 6)]
        )
        cpe = CpeEnumerator(g, 0, 6, 4)
        assert set(cpe.startup()) == {(0, 1, 2, 6)}
        result = cpe.delete_edge(2, 6)
        assert set(result.paths) == {(0, 1, 2, 6)}
        assert_index_matches_fresh(cpe)
        assert cpe.startup() == []

    def test_tightened_vertex_beyond_horizon(self):
        g = DynamicDiGraph([(0, 1), (1, 2), (2, 3)])
        cpe = CpeEnumerator(g, 0, 3, 3)
        cpe.delete_edge(0, 1)
        assert_index_matches_fresh(cpe)
        assert cpe.startup() == []

    def test_cycle_of_tightened_vertices(self):
        # after deleting (0, 1), vertices 1 and 2 keep each other "alive"
        # through a cycle; Algorithm 5's bucket phase must still settle
        g = DynamicDiGraph([(0, 1), (1, 2), (2, 1), (1, 3), (2, 3)])
        cpe = CpeEnumerator(g, 0, 3, 4)
        before = set(cpe.startup())
        result = cpe.delete_edge(0, 1)
        assert set(result.paths) == before
        assert cpe.startup() == []
        assert_index_matches_fresh(cpe)


class TestRandomizedDeletions:
    def test_streams_match_bruteforce_and_invariant(self):
        rng = random.Random(88)
        for _ in range(50):
            g = make_random_graph(rng, max_edges=16)
            s, t, k = random_query(rng, g)
            cpe = CpeEnumerator(g, s, t, k)
            current = path_set(g, s, t, k)
            edges = list(g.edges())
            rng.shuffle(edges)
            for u, v in edges[:8]:
                result = cpe.delete_edge(u, v)
                fresh = path_set(g, s, t, k)
                assert set(result.paths) == current - fresh
                assert len(result.paths) == len(set(result.paths))
                current = fresh
            assert_index_matches_fresh(cpe)

    def test_mixed_streams(self):
        rng = random.Random(99)
        for _ in range(40):
            g = make_random_graph(rng, max_edges=12)
            s, t, k = random_query(rng, g)
            cpe = CpeEnumerator(g, s, t, k)
            current = path_set(g, s, t, k)
            for _ in range(14):
                u, v = rng.sample(list(g.vertices()), 2)
                if g.has_edge(u, v):
                    result = cpe.delete_edge(u, v)
                    fresh = path_set(g, s, t, k)
                    assert set(result.paths) == current - fresh
                else:
                    result = cpe.insert_edge(u, v)
                    fresh = path_set(g, s, t, k)
                    assert set(result.paths) == fresh - current
                current = fresh
            assert_index_matches_fresh(cpe)
