"""Tests for the CpeEnumerator facade."""

import pytest

from repro.core.enumerator import CpeEnumerator
from repro.core.plan import balanced_plan
from repro.graph.digraph import DynamicDiGraph, EdgeUpdate


class TestConstruction:
    def test_rejects_equal_endpoints(self):
        with pytest.raises(ValueError):
            CpeEnumerator(DynamicDiGraph([(0, 1)]), 0, 0, 3)

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            CpeEnumerator(DynamicDiGraph([(0, 1)]), 0, 1, -2)

    def test_missing_endpoints_tolerated(self):
        cpe = CpeEnumerator(DynamicDiGraph([(5, 6)]), 0, 1, 3)
        assert cpe.startup() == []

    def test_forced_plan(self):
        g = DynamicDiGraph([(0, 1), (1, 2), (2, 3)])
        cpe = CpeEnumerator(g, 0, 3, 4, forced_plan=balanced_plan(4))
        assert cpe.plan.pairs == balanced_plan(4).pairs
        assert set(cpe.startup()) == {(0, 1, 2, 3)}

    def test_repr(self):
        cpe = CpeEnumerator(DynamicDiGraph([(0, 1)]), 0, 1, 2)
        assert "CpeEnumerator" in repr(cpe)


class TestStartup:
    def test_startup_and_count_agree(self, diamond):
        cpe = CpeEnumerator(diamond, 0, 3, 3)
        assert len(cpe.startup()) == cpe.count_paths() == 3

    def test_iter_paths_streams(self, diamond):
        cpe = CpeEnumerator(diamond, 0, 3, 3)
        it = cpe.iter_paths()
        first = next(it)
        assert first in {(0, 3), (0, 1, 3), (0, 2, 3)}

    def test_k1_direct_edge_only(self, diamond):
        cpe = CpeEnumerator(diamond, 0, 3, 1)
        assert cpe.startup() == [(0, 3)]

    def test_k0_no_paths(self, diamond):
        cpe = CpeEnumerator(diamond, 0, 3, 0)
        assert cpe.startup() == []


class TestUpdates:
    def test_apply_dispatches(self, diamond):
        cpe = CpeEnumerator(diamond, 0, 3, 3)
        res = cpe.apply(EdgeUpdate(0, 3, False))
        assert res.update.insert is False
        assert (0, 3) in res.paths
        res = cpe.apply(EdgeUpdate(0, 3, True))
        assert res.update.insert is True
        assert (0, 3) in res.paths

    def test_apply_stream(self, diamond):
        cpe = CpeEnumerator(diamond, 0, 3, 3)
        results = cpe.apply_stream(
            [EdgeUpdate(0, 3, False), EdgeUpdate(0, 3, True)]
        )
        assert len(results) == 2
        assert results[0].delta_count == results[1].delta_count == 1

    def test_timings_recorded(self, diamond):
        cpe = CpeEnumerator(diamond, 0, 3, 3)
        res = cpe.delete_edge(1, 3)
        assert res.maintain_seconds >= 0
        assert res.enumerate_seconds >= 0
        assert res.total_seconds == pytest.approx(
            res.maintain_seconds + res.enumerate_seconds
        )

    def test_noop_update_has_zero_delta(self, diamond):
        cpe = CpeEnumerator(diamond, 0, 3, 3)
        res = cpe.insert_edge(0, 1)  # already present
        assert res.changed is False
        assert res.delta_count == 0

    def test_k1_updates_track_direct_edge_only(self):
        g = DynamicDiGraph([(0, 1), (1, 2)])
        cpe = CpeEnumerator(g, 0, 2, 1)
        res = cpe.insert_edge(0, 2)
        assert res.paths == [(0, 2)]
        res = cpe.delete_edge(0, 2)
        assert res.paths == [(0, 2)]
        res = cpe.insert_edge(1, 0)  # irrelevant at k=1
        assert res.paths == []

    def test_updates_through_facade_keep_graph_reference(self, diamond):
        cpe = CpeEnumerator(diamond, 0, 3, 3)
        cpe.insert_edge(3, 0)
        assert diamond.has_edge(3, 0)  # facade mutates the caller's graph


class TestIntrospection:
    def test_memory_stats_change_with_updates(self, diamond):
        cpe = CpeEnumerator(diamond, 0, 3, 3)
        before = cpe.memory_stats().path_count
        cpe.delete_edge(1, 3)
        after = cpe.memory_stats().path_count
        assert after < before

    def test_construction_stats_exposed(self, diamond):
        cpe = CpeEnumerator(diamond, 0, 3, 3)
        stats = cpe.construction_stats
        assert stats.left_paths + stats.right_paths == cpe.memory_stats().path_count
        assert stats.induced_size >= 2
