"""Tests for query and update-stream generation."""

import pytest

from repro.core.distance import DistanceMap
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import gnm_random_graph, preferential_attachment_graph
from repro.workloads.queries import Query, hot_queries, random_queries
from repro.workloads.traffic import service_traffic
from repro.workloads.updates import relevant_update_stream


class TestQueries:
    def test_random_queries_count_and_distinct_endpoints(self):
        g = gnm_random_graph(50, 200, seed=1)
        qs = random_queries(g, 10, 4, seed=2)
        assert len(qs) == 10
        assert all(q.s != q.t and q.k == 4 for q in qs)

    def test_random_queries_deterministic(self):
        g = gnm_random_graph(50, 200, seed=1)
        assert random_queries(g, 5, 4, seed=3) == random_queries(g, 5, 4, seed=3)

    def test_connected_filter_prefers_reachable_pairs(self):
        # two disconnected dense blobs: unconstrained sampling would mix
        # them about half the time
        g = gnm_random_graph(20, 100, seed=4)
        other = gnm_random_graph(20, 100, seed=5)
        for u, v in other.edges():
            g.add_edge(u + 100, v + 100)
        qs = random_queries(g, 20, 6, seed=6, connected=True)
        mixed = sum(1 for q in qs if (q.s < 100) != (q.t < 100))
        assert mixed == 0

    def test_unreachable_pool_falls_back(self):
        g = DynamicDiGraph(vertices=range(5))  # no edges at all
        qs = random_queries(g, 3, 4, seed=7, connected=True)
        assert len(qs) == 3  # does not loop forever

    def test_hot_queries_use_high_degree_pool(self):
        g = preferential_attachment_graph(300, 2, seed=8)
        qs = hot_queries(g, 10, 5, top_fraction=0.01, seed=9)
        degrees = sorted((g.degree(v) for v in g.vertices()), reverse=True)
        cutoff = degrees[max(1, int(len(degrees) * 0.01)) - 1]
        for q in qs:
            assert g.degree(q.s) >= cutoff
            assert g.degree(q.t) >= cutoff

    def test_hot_queries_tiny_pool_falls_back(self):
        g = DynamicDiGraph([(0, 1)])
        qs = hot_queries(g, 2, 3, top_fraction=0.001, seed=1)
        assert len(qs) == 2

    def test_query_str(self):
        assert str(Query(1, 2, 6)) == "q(1, 2, 6)"


class TestUpdateStream:
    def make_graph(self):
        return gnm_random_graph(60, 240, seed=10)

    def test_stream_is_valid_when_replayed(self):
        g = self.make_graph()
        stream = relevant_update_stream(g, 0, 1, 6, 10, 10, seed=11)
        assert stream, "expected a non-empty stream"
        replay = g.copy()
        for upd in stream:
            assert replay.apply_update(upd), f"invalid update {upd}"

    def test_stream_respects_relevance_inequality(self):
        g = self.make_graph()
        k = 6
        ds = DistanceMap(g, 0, horizon=k)
        dt = DistanceMap(g.reverse_view(), 1, horizon=k)
        for upd in relevant_update_stream(g, 0, 1, k, 8, 8, seed=12):
            assert ds.get(upd.u) + 1 + dt.get(upd.v) <= k

    def test_original_graph_untouched(self):
        g = self.make_graph()
        snapshot = g.copy()
        relevant_update_stream(g, 0, 1, 6, 10, 10, seed=13)
        assert g == snapshot

    def test_insert_delete_split(self):
        g = self.make_graph()
        stream = relevant_update_stream(
            g, 0, 1, 6, 7, 3, seed=14, interleave=False
        )
        inserts = [u for u in stream if u.insert]
        deletes = [u for u in stream if not u.insert]
        assert len(inserts) <= 7 and len(deletes) <= 3
        assert stream[: len(inserts)] == inserts  # non-interleaved order

    def test_empty_when_induced_subgraph_trivial(self):
        g = DynamicDiGraph([(0, 1)], vertices=[8, 9])
        stream = relevant_update_stream(g, 8, 9, 3, 5, 5, seed=15)
        assert stream == []

    def test_deterministic(self):
        g = self.make_graph()
        a = relevant_update_stream(g, 0, 1, 6, 5, 5, seed=16)
        b = relevant_update_stream(g, 0, 1, 6, 5, 5, seed=16)
        assert a == b


class TestServiceTrafficZipf:
    def make_graph(self):
        return gnm_random_graph(60, 240, seed=20)

    def test_zipf_deterministic_under_seed(self):
        g = self.make_graph()
        a = service_traffic(g, 80, 4, zipf_a=1.2, seed=21)
        b = service_traffic(g, 80, 4, zipf_a=1.2, seed=21)
        assert a == b

    def test_zipf_skews_query_popularity(self):
        g = self.make_graph()
        uniform = service_traffic(
            g, 400, 4, update_fraction=0.0, distinct_pairs=8, seed=22
        )
        skewed = service_traffic(
            g, 400, 4, update_fraction=0.0, distinct_pairs=8,
            zipf_a=2.0, seed=22,
        )

        def top_share(ops):
            counts: dict = {}
            for op in ops:
                counts[op[1:]] = counts.get(op[1:], 0) + 1
            return max(counts.values()) / len(ops)

        # with a = 2 the hottest pair dominates; uniform stays near 1/8
        assert top_share(skewed) > top_share(uniform) + 0.2

    def test_zipf_only_reweights_the_same_pair_pool(self):
        g = self.make_graph()
        uniform = service_traffic(
            g, 200, 4, update_fraction=0.0, distinct_pairs=6, seed=23
        )
        skewed = service_traffic(
            g, 200, 4, update_fraction=0.0, distinct_pairs=6,
            zipf_a=1.5, seed=23,
        )
        assert {op[1:] for op in skewed} <= {op[1:] for op in uniform}

    def test_zipf_validation(self):
        g = self.make_graph()
        with pytest.raises(ValueError):
            service_traffic(g, 10, 4, zipf_a=0.0, seed=24)
        with pytest.raises(ValueError):
            service_traffic(g, 10, 4, zipf_a=-1.0, seed=24)
