"""Tests for the ``serve`` / ``bench-serve`` CLI commands."""

import json

from repro.cli import main


class TestBenchServe:
    def test_small_run_reports_and_saves(self, tmp_path, capsys):
        target = tmp_path / "serve.json"
        code = main([
            "bench-serve", "WG",
            "--requests", "40",
            "--scale", "0.1",
            "--seed", "7",
            "--save", str(target),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "throughput" in out
        assert "p99" in out
        summary = json.loads(target.read_text())
        assert summary["requests"] == 40
        assert summary["ok"] == 40
        assert summary["errors"] == {}
        assert summary["latency_ms"]["p99"] >= summary["latency_ms"]["p50"]

    def test_acceptance_thousand_requests_no_errors(self, capsys):
        """The ISSUE bar: >= 1,000 served requests without error."""
        code = main([
            "bench-serve", "WG",
            "--requests", "1000",
            "--scale", "0.1",
            "--update-fraction", "0.1",
            "--seed", "11",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "1000 requests" in out
        assert "(1000 ok, 0 errors)" in out


class TestServeParser:
    def test_bad_watch_pair_is_a_usage_error(self, capsys):
        code = main([
            "serve", "WG", "--scale", "0.1", "--watch", "nonsense",
        ])
        assert code == 2
        assert "expected S:T" in capsys.readouterr().err
