"""Unit tests for the synthetic graph generators."""

import pytest

from repro.graph import generators


class TestGnm:
    def test_exact_edge_count(self):
        g = generators.gnm_random_graph(50, 120, seed=1)
        assert g.num_vertices == 50
        assert g.num_edges == 120

    def test_no_self_loops(self):
        g = generators.gnm_random_graph(30, 200, seed=2)
        assert all(u != v for u, v in g.edges())

    def test_deterministic_for_seed(self):
        a = generators.gnm_random_graph(40, 100, seed=3)
        b = generators.gnm_random_graph(40, 100, seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        a = generators.gnm_random_graph(40, 100, seed=3)
        b = generators.gnm_random_graph(40, 100, seed=4)
        assert a != b

    def test_dense_sampling_path(self):
        # above 50% fill the generator switches to explicit sampling
        g = generators.gnm_random_graph(8, 50, seed=5)
        assert g.num_edges == 50

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            generators.gnm_random_graph(3, 7, seed=0)

    def test_negative_vertices_rejected(self):
        with pytest.raises(ValueError):
            generators.gnm_random_graph(-1, 0)

    def test_empty(self):
        g = generators.gnm_random_graph(0, 0)
        assert g.num_vertices == 0


class TestPreferentialAttachment:
    def test_size_and_connectivity(self):
        g = generators.preferential_attachment_graph(200, 2, seed=7)
        assert g.num_vertices == 200
        assert g.num_edges >= 200  # every late vertex adds ~2 edges

    def test_heavy_tail(self):
        g = generators.preferential_attachment_graph(500, 2, seed=8)
        degrees = sorted((g.degree(v) for v in g.vertices()), reverse=True)
        # hubs exist: the max degree is far above the mean
        mean = sum(degrees) / len(degrees)
        assert degrees[0] > 4 * mean

    def test_deterministic(self):
        a = generators.preferential_attachment_graph(100, 3, seed=9)
        b = generators.preferential_attachment_graph(100, 3, seed=9)
        assert a == b

    def test_bad_out_degree(self):
        with pytest.raises(ValueError):
            generators.preferential_attachment_graph(10, 0)

    def test_tiny_graph(self):
        g = generators.preferential_attachment_graph(3, 5, seed=1)
        assert g.num_vertices == 3


class TestSmallWorld:
    def test_ring_structure_without_rewiring(self):
        g = generators.small_world_graph(10, 2, 0.0, seed=1)
        assert g.has_edge(0, 1) and g.has_edge(0, 2)
        assert g.has_edge(9, 0) and g.has_edge(9, 1)
        assert g.num_edges == 20

    def test_rewiring_changes_structure(self):
        a = generators.small_world_graph(50, 2, 0.0, seed=2)
        b = generators.small_world_graph(50, 2, 0.9, seed=2)
        assert a != b

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            generators.small_world_graph(10, 2, 1.5)

    def test_degenerate_sizes(self):
        assert generators.small_world_graph(1, 2, 0.1).num_edges == 0
        assert generators.small_world_graph(0, 2, 0.1).num_vertices == 0


class TestCommunityGraph:
    def test_sizes(self):
        g = generators.community_graph(4, 10, 0.3, 12, seed=3)
        assert g.num_vertices == 40

    def test_intra_community_density(self):
        g = generators.community_graph(2, 20, 0.5, 0, seed=4)
        # no bridges requested: all edges stay within a community block
        for u, v in g.edges():
            assert (u < 20) == (v < 20)

    def test_bridge_count(self):
        g = generators.community_graph(3, 10, 0.0, 15, seed=5)
        assert g.num_edges == 15  # intra probability 0 leaves only bridges

    def test_single_community_no_bridges(self):
        g = generators.community_graph(1, 10, 0.2, 100, seed=6)
        assert all(u < 10 and v < 10 for u, v in g.edges())


class TestLayeredDag:
    def test_full_connectivity_path_count(self):
        g, s, t = generators.layered_dag([2, 3])
        # paths = product of layer sizes
        from repro.baselines.bruteforce import count_paths

        assert count_paths(g, s, t, 10) == 6

    def test_shape(self):
        g, s, t = generators.layered_dag([2, 2])
        assert s == 0
        assert t == 5
        assert g.num_vertices == 6

    def test_probability_sampling(self):
        g_full, _, _ = generators.layered_dag([3, 3], 1.0, seed=1)
        g_half, _, _ = generators.layered_dag([3, 3], 0.4, seed=1)
        assert g_half.num_edges < g_full.num_edges


class TestGrid:
    def test_monotone_lattice_paths(self):
        from repro.baselines.bruteforce import count_paths

        g = generators.grid_graph(3, 3)
        # monotone paths in a 3x3 grid: C(4, 2) = 6
        assert count_paths(g, 0, 8, 10) == 6

    def test_edges_only_right_and_down(self):
        g = generators.grid_graph(2, 2)
        assert set(g.edges()) == {(0, 1), (0, 2), (1, 3), (2, 3)}


def test_random_update_edges():
    g = generators.gnm_random_graph(20, 30, seed=1)
    pairs = generators.random_update_edges(g, 10, seed=2)
    assert len(pairs) == 10
    assert all(u != v for u, v in pairs)


def test_random_update_edges_needs_two_vertices():
    from repro.graph.digraph import DynamicDiGraph

    with pytest.raises(ValueError):
        generators.random_update_edges(DynamicDiGraph(vertices=[1]), 1)
