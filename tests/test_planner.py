"""Tests for the cost-based query planner (repro.planner)."""

import random

import pytest

from repro import obs
from repro.baselines.bruteforce import path_set
from repro.core.enumerator import CpeEnumerator
from repro.graph.digraph import DynamicDiGraph
from repro.obs import events
from repro.planner import (
    PLAN_CACHED,
    PLAN_DIRECT,
    PLAN_INDEX,
    PLANNER_MODES,
    QueryPlanner,
    frontier_profile,
)
from repro.service.cache import IndexCache
from repro.service.engine import PathQueryEngine
from repro.service.protocol import BadRequestError, decode_paths
from tests.conftest import make_random_graph, random_query


def chain_graph(n=8):
    return DynamicDiGraph([(i, i + 1) for i in range(n)] +
                          [(0, 2), (1, 3), (2, 4)])


class TestFrontierProfile:
    def test_shares_the_enumerator_contract(self):
        g = chain_graph()
        with pytest.raises(ValueError, match="s and t"):
            frontier_profile(g, 0, 0, 3)
        with pytest.raises(ValueError, match="non-negative"):
            frontier_profile(g, 0, 4, -1)

    def test_zero_hop_budget_estimates_zero_paths(self):
        profile = frontier_profile(chain_graph(), 0, 4, 0)
        assert profile.est_paths == 0.0
        assert profile.forward == (1.0,)

    def test_first_hop_uses_true_degrees(self):
        g = chain_graph()
        profile = frontier_profile(g, 0, 4, 4)
        assert profile.forward[1] == g.out_degree(0)
        assert profile.backward[1] == g.in_degree(4)

    def test_frontiers_saturate_at_vertex_count(self):
        # complete-ish digraph: avg out-degree > 1 everywhere
        n = 6
        g = DynamicDiGraph(
            [(u, v) for u in range(n) for v in range(n) if u != v]
        )
        profile = frontier_profile(g, 0, n - 1, 8)
        assert max(profile.forward) <= n
        assert max(profile.backward) <= n

    def test_build_cost_positive_for_reachable_query(self):
        profile = frontier_profile(chain_graph(), 0, 4, 4)
        assert profile.build_cost > 0
        assert profile.est_entry_bytes(4) > 256.0


class TestDecisionBoundaries:
    """Graphs/workloads where each of the three plans should win."""

    def test_first_sight_cold_query_goes_direct(self):
        g = chain_graph()
        planner = QueryPlanner(g, IndexCache(g), mode="auto")
        decision = planner.decide(0, 4, 4)
        assert decision.chosen == PLAN_DIRECT
        assert decision.repeat_count == 0 and not decision.warm

    def test_repeated_key_flips_to_index(self):
        g = chain_graph()
        planner = QueryPlanner(g, IndexCache(g), mode="auto")
        first = planner.decide(0, 4, 4)
        second = planner.decide(0, 4, 4)
        assert first.chosen == PLAN_DIRECT
        assert second.chosen == PLAN_INDEX
        assert second.repeat_count == 1

    def test_warm_cache_wins_outright(self):
        g = chain_graph()
        cache = IndexCache(g)
        cache.get_or_build(0, 4, 4)
        planner = QueryPlanner(g, cache, mode="auto")
        decision = planner.decide(0, 4, 4)
        assert decision.chosen == PLAN_CACHED
        assert decision.warm

    def test_oversized_entry_keeps_going_direct(self):
        # With a 1-byte budget the index plan is infeasible (the entry
        # could never be retained), so even repeat-heavy keys stay on
        # the one-shot plan.
        g = chain_graph()
        planner = QueryPlanner(g, IndexCache(g, budget_bytes=1), mode="auto")
        for _ in range(4):
            assert planner.decide(0, 4, 4).chosen == PLAN_DIRECT
        index_row = next(
            e for e in planner.preview(0, 4, 4).estimates
            if e.plan == PLAN_INDEX
        )
        assert not index_row.feasible

    def test_index_mode_never_goes_direct(self):
        g = chain_graph()
        cache = IndexCache(g)
        planner = QueryPlanner(g, cache, mode="index")
        assert planner.decide(0, 4, 4).chosen == PLAN_INDEX
        cache.get_or_build(0, 4, 4)
        assert planner.decide(0, 4, 4).chosen == PLAN_CACHED

    def test_direct_mode_always_goes_direct(self):
        g = chain_graph()
        cache = IndexCache(g)
        cache.get_or_build(0, 4, 4)  # even a warm entry is ignored
        planner = QueryPlanner(g, cache, mode="direct")
        assert planner.decide(0, 4, 4).chosen == PLAN_DIRECT

    def test_cacheless_planner_prices_unlimited_budget(self):
        planner = QueryPlanner(chain_graph(), cache=None, mode="auto")
        decision = planner.preview(0, 4, 4)
        assert not decision.warm
        assert all(
            e.feasible for e in decision.estimates if e.plan != PLAN_CACHED
        )

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="planner mode"):
            QueryPlanner(chain_graph(), mode="bogus")
        assert "auto" in PLANNER_MODES


class TestPreviewIsPure:
    def test_preview_records_nothing(self):
        g = chain_graph()
        planner = QueryPlanner(g, IndexCache(g), mode="auto")
        for _ in range(3):
            planner.preview(0, 4, 4)
        stats = planner.stats()
        assert stats["decisions"] == 0
        assert stats["tracked_keys"] == 0
        # repeat history untouched: the next decide is still first-sight
        assert planner.decide(0, 4, 4).repeat_count == 0


class TestAccounting:
    def test_stats_counters_track_decisions(self):
        g = chain_graph()
        planner = QueryPlanner(g, IndexCache(g), mode="auto")
        planner.decide(0, 4, 4)
        planner.decide(0, 4, 4)
        stats = planner.stats()
        assert stats["decisions"] == 2
        assert stats["by_plan"][PLAN_DIRECT] == 1
        assert stats["by_plan"][PLAN_INDEX] == 1
        assert stats["tracked_keys"] == 1

    def test_note_actual_feeds_error_average(self):
        g = chain_graph()
        planner = QueryPlanner(g, IndexCache(g), mode="auto")
        decision = planner.decide(0, 4, 4)
        error = planner.note_actual(decision, actual_paths=5)
        assert error == pytest.approx(abs(decision.est_paths - 5) / 5)
        stats = planner.stats()
        assert stats["estimate_error_count"] == 1
        assert stats["estimate_error_avg"] == pytest.approx(error, abs=1e-4)

    def test_losing_plans_exclude_the_winner(self):
        planner = QueryPlanner(chain_graph(), mode="direct")
        decision = planner.preview(0, 4, 4)
        losing = {e.plan for e in decision.losing()}
        assert decision.chosen not in losing
        assert losing == {PLAN_CACHED, PLAN_INDEX}

    def test_decision_dict_is_json_shaped(self):
        planner = QueryPlanner(chain_graph(), mode="auto")
        digest = planner.preview(0, 4, 4).as_dict()
        assert set(digest) == {
            "mode", "chosen", "est_paths", "repeat_count", "warm", "plans",
        }
        assert {row["plan"] for row in digest["plans"]} == {
            PLAN_CACHED, PLAN_INDEX, PLAN_DIRECT,
        }

    def test_decide_emits_event_and_metric(self):
        prev_obs = obs.set_enabled(True)
        prev_events = events.set_enabled(True)
        obs.reset()
        events.reset()
        try:
            g = chain_graph()
            planner = QueryPlanner(g, IndexCache(g), mode="auto")
            decision = planner.decide(0, 4, 4)
            planner.note_actual(decision, 5)
            snap = obs.snapshot()
            assert snap["counters"]["planner.plan.direct"] == 1
            assert "planner.estimate.error" in snap["histograms"]
            kinds = [event["kind"] for event in events.tail(10)]
            assert events.PLAN_CHOSEN in kinds
        finally:
            obs.set_enabled(prev_obs)
            events.set_enabled(prev_events)
            obs.reset()
            events.reset()


class TestRunDirect:
    def test_matches_bruteforce_and_index_order(self):
        g = chain_graph()
        planner = QueryPlanner(g, mode="direct")
        paths = planner.run_direct(0, 4, 4)
        assert set(paths) == path_set(g, 0, 4, 4)
        assert paths == CpeEnumerator(g, 0, 4, 4).startup()

    def test_randomized_equivalence(self):
        rng = random.Random(77)
        for _ in range(15):
            g = make_random_graph(rng, max_edges=16)
            s, t, k = random_query(rng, g)
            planner = QueryPlanner(g, mode="direct")
            assert planner.run_direct(s, t, k) == CpeEnumerator(
                g, s, t, k
            ).startup()

    def test_leaves_no_state_behind(self):
        g = chain_graph()
        cache = IndexCache(g)
        engine = PathQueryEngine(g, planner="direct")
        engine.op_query(s=0, t=4, k=4)
        assert len(engine.cache) == 0
        assert len(cache) == 0


class TestEngineIntegration:
    def test_sources_per_mode(self):
        sources = {}
        for mode in PLANNER_MODES:
            engine = PathQueryEngine(chain_graph(), planner=mode)
            sources[mode] = [
                engine.op_query(s=0, t=4, k=4)["source"] for _ in range(3)
            ]
        assert sources["index"] == ["miss", "hit", "hit"]
        assert sources["auto"] == ["direct", "miss", "hit"]
        assert sources["direct"] == ["direct", "direct", "direct"]

    def test_default_mode_is_legacy_index(self):
        engine = PathQueryEngine(chain_graph())
        assert engine.planner.mode == "index"
        assert engine.op_query(s=0, t=4, k=4)["source"] == "miss"
        assert engine.planner.stats()["decisions"] == 0

    def test_watched_pair_bypasses_the_planner(self):
        engine = PathQueryEngine(chain_graph(), default_k=4, planner="direct")
        engine.op_watch(s=0, t=4)
        assert engine.op_query(s=0, t=4, k=4)["source"] == "watched"
        assert engine.planner.stats()["decisions"] == 0

    @pytest.mark.parametrize("mode", PLANNER_MODES)
    def test_invalid_queries_stay_bad_requests(self, mode):
        engine = PathQueryEngine(chain_graph(), planner=mode)
        with pytest.raises(BadRequestError):
            engine.op_query(s=0, t=0, k=3)
        with pytest.raises(BadRequestError):
            engine.op_query(s=0, t=4, k=-1)

    def test_rejects_unknown_planner_mode(self):
        with pytest.raises(ValueError):
            PathQueryEngine(chain_graph(), planner="bogus")

    def test_stats_op_carries_planner_section(self):
        engine = PathQueryEngine(chain_graph(), planner="auto")
        engine.op_query(s=0, t=4, k=4)
        section = engine.op_stats()["planner"]
        assert section["mode"] == "auto"
        assert section["decisions"] == 1
        assert section["by_plan"]["direct"] == 1

    def test_explain_reports_plan_with_est_vs_actual(self):
        engine = PathQueryEngine(chain_graph(), planner="auto")
        report = engine.op_explain(s=0, t=4, k=4, analyze=True)["explain"]
        section = report["planner"]
        assert section["mode"] == "auto"
        assert section["chosen"] == PLAN_DIRECT
        assert {row["plan"] for row in section["plans"]} == {
            PLAN_CACHED, PLAN_INDEX, PLAN_DIRECT,
        }
        assert section["actual_paths"] == report["total_paths"]
        expected_error = abs(
            section["est_paths"] - section["actual_paths"]
        ) / max(section["actual_paths"], 1)
        assert section["estimate_error"] == pytest.approx(
            expected_error, abs=1e-3
        )
        assert section["walk_count_bound"] >= section["actual_paths"]

    def test_explain_without_analyze_omits_actuals(self):
        engine = PathQueryEngine(chain_graph(), planner="auto")
        section = engine.op_explain(s=0, t=4, k=4)["explain"]["planner"]
        assert "actual_paths" not in section
        assert "estimate_error" not in section

    def test_answers_identical_across_modes_spot_check(self):
        baseline = None
        for mode in PLANNER_MODES:
            engine = PathQueryEngine(chain_graph(), planner=mode)
            paths = decode_paths(engine.op_query(s=0, t=4, k=4)["paths"])
            if baseline is None:
                baseline = paths
            assert paths == baseline
