"""Merge semantics for :mod:`repro.obs.metrics` fleet aggregation.

The fleet-wide ``metrics`` surface folds per-shard registry states into
one with :func:`merge_states`.  Everything downstream (Prometheus
exposition, ``repro top``, regression dashboards) assumes that fold is
a well-behaved monoid: associative, order-independent, with the empty
registry as identity — and that rendering a merged state is
byte-stable.  These tests pin each of those properties on fixed seeds.
"""

import random

import pytest

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    merge_histogram_states,
    merge_states,
)

SEED = 20260809


def dyadic(rng, lo=0, hi=4096, scale=1024.0):
    """A random dyadic rational — float sums over these are exact, so
    byte-identity assertions are about semantics, not rounding luck."""
    return rng.randint(lo, hi) / scale


def make_registry(seed, names=("alpha", "beta"), observations=25):
    """A registry with seeded counter/gauge/histogram traffic."""
    rng = random.Random(seed)
    registry = MetricsRegistry()
    for name in names:
        counter = registry.counter(f"{name}.requests")
        gauge = registry.gauge(f"{name}.inflight")
        histogram = registry.histogram(f"{name}.seconds")
        for _ in range(observations):
            counter.inc(rng.randint(1, 5))
            gauge.set(dyadic(rng))
            histogram.observe(dyadic(rng, lo=1))
    return registry


@pytest.fixture()
def shard_states():
    """Three per-shard registry states with overlapping metric names."""
    return [
        make_registry(SEED).state(),
        make_registry(SEED + 1).state(),
        make_registry(SEED + 2, names=("alpha", "gamma")).state(),
    ]


# ---------------------------------------------------------------------------
# Histogram state merging
# ---------------------------------------------------------------------------


class TestHistogramMerge:
    def test_counts_totals_and_extremes_combine(self):
        left = Histogram("h")
        right = Histogram("h")
        for v in (0.2, 0.4, 0.9):
            left.observe(v)
        for v in (0.1, 0.6):
            right.observe(v)
        merged = merge_histogram_states(left.state(), right.state())
        assert merged["count"] == 5
        assert merged["total"] == pytest.approx(2.2)
        assert merged["min"] == pytest.approx(0.1)
        assert merged["max"] == pytest.approx(0.9)
        assert merged["samples"] == sorted(merged["samples"])

    def test_empty_histogram_is_identity(self):
        live = Histogram("h")
        for v in (0.3, 0.7):
            live.observe(v)
        alone = merge_histogram_states(live.state())
        with_empty = merge_histogram_states(live.state(), Histogram("h").state())
        assert with_empty == alone
        # Merging only empties stays the canonical empty state.
        both_empty = merge_histogram_states(
            Histogram("h").state(), Histogram("h").state()
        )
        assert both_empty["count"] == 0
        assert both_empty["min"] == 0.0
        assert both_empty["max"] == 0.0

    def test_same_multiset_different_order_is_byte_equal(self):
        rng = random.Random(SEED)
        values = [dyadic(rng) for _ in range(40)]
        forward = Histogram("h")
        backward = Histogram("h")
        for v in values:
            forward.observe(v)
        for v in reversed(values):
            backward.observe(v)
        assert forward.state() == backward.state()

    def test_from_state_restores_exact_quantiles(self):
        source = Histogram("h")
        rng = random.Random(SEED)
        for _ in range(64):
            source.observe(dyadic(rng))
        restored = Histogram.from_state("h", source.state())
        assert restored.count == source.count
        assert restored.percentiles() == source.percentiles()
        assert restored.as_dict() == source.as_dict()


# ---------------------------------------------------------------------------
# Registry state merging: the monoid laws
# ---------------------------------------------------------------------------


class TestRegistryMerge:
    def test_order_independence(self, shard_states):
        a, b, c = shard_states
        assert merge_states(a, b, c) == merge_states(c, b, a)
        assert merge_states(a, b) == merge_states(b, a)

    def test_associativity(self, shard_states):
        a, b, c = shard_states
        left = merge_states(merge_states(a, b), c)
        right = merge_states(a, merge_states(b, c))
        assert left == right == merge_states(a, b, c)

    def test_empty_registry_is_identity(self, shard_states):
        a = shard_states[0]
        empty = MetricsRegistry().state()
        assert merge_states(a, empty) == merge_states(a)
        assert merge_states(empty, a) == merge_states(a)

    def test_counter_and_histogram_counts_are_sums(self, shard_states):
        merged = merge_states(*shard_states)
        for name in merged["counters"]:
            expected = sum(
                state["counters"].get(name, 0) for state in shard_states
            )
            assert merged["counters"][name] == expected
        for name, histogram in merged["histograms"].items():
            expected = sum(
                state["histograms"].get(name, {}).get("count", 0)
                for state in shard_states
            )
            assert histogram["count"] == expected

    def test_gauges_sum_across_processes(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.gauge("pool.inflight").set(2.0)
        b.gauge("pool.inflight").set(3.5)
        merged = merge_states(a.state(), b.state())
        assert merged["gauges"]["pool.inflight"] == pytest.approx(5.5)

    def test_metric_maps_are_name_sorted(self, shard_states):
        merged = merge_states(*reversed(shard_states))
        for kind in ("counters", "gauges", "histograms"):
            assert list(merged[kind]) == sorted(merged[kind])


# ---------------------------------------------------------------------------
# Byte-stable exposition after merge
# ---------------------------------------------------------------------------


class TestMergedExposition:
    def test_prometheus_bytes_stable_across_merge_order(self, shard_states):
        a, b, c = shard_states
        one = MetricsRegistry.from_state(merge_states(a, b, c))
        other = MetricsRegistry.from_state(merge_states(c, a, b))
        text = one.render_prometheus()
        assert text.encode() == other.render_prometheus().encode()
        # The merged exposition carries every metric family.
        for name in ("alpha_requests", "beta_seconds", "gamma_inflight"):
            assert name in text

    def test_round_trip_through_from_state_is_stable(self, shard_states):
        merged = merge_states(*shard_states)
        rebuilt = MetricsRegistry.from_state(merged)
        assert rebuilt.state() == merged
        again = MetricsRegistry.from_state(rebuilt.state())
        assert again.render_prometheus() == rebuilt.render_prometheus()
