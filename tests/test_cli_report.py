"""Tests for the `repro report` subcommand and results integration."""

import pytest

from repro.cli import main


def test_report_subcommand_end_to_end(tmp_path, capsys):
    save_dir = tmp_path / "csvs"
    assert main(
        [
            "experiment", "density", "--updates", "6",
            "--csv", "--save", str(save_dir),
        ]
    ) == 0
    capsys.readouterr()
    out_file = tmp_path / "report.md"
    assert main(["report", str(save_dir), str(out_file)]) == 0
    text = out_file.read_text()
    assert text.startswith("# Experiment report")
    assert "## density" in text


def test_report_subcommand_to_stdout(tmp_path, capsys):
    save_dir = tmp_path / "csvs"
    main(["experiment", "density", "--updates", "4", "--csv",
          "--save", str(save_dir)])
    capsys.readouterr()
    assert main(["report", str(save_dir)]) == 0
    assert "## density" in capsys.readouterr().out


def test_report_subcommand_missing_dir(tmp_path):
    with pytest.raises(FileNotFoundError):
        main(["report", str(tmp_path / "nothing")])


def test_maintained_result_set_with_monitor_pipeline():
    """results.py composes with the watchlist machinery."""
    import random

    from repro.core.enumerator import CpeEnumerator
    from repro.core.results import MaintainedResultSet
    from repro.graph.generators import community_graph

    rng = random.Random(3)
    graph = community_graph(3, 10, 0.25, 12, seed=4)
    rs = MaintainedResultSet(CpeEnumerator(graph, 0, 25, 4))
    for _ in range(120):
        u, v = rng.sample(range(30), 2)
        if graph.has_edge(u, v):
            rs.delete_edge(u, v)
        else:
            rs.insert_edge(u, v)
    assert rs.audit()
    histogram = rs.length_histogram()
    assert sum(histogram.values()) == rs.count()
    if rs.count():
        assert min(histogram) >= 1 and max(histogram) <= 4
