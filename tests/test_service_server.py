"""End-to-end tests: live TCP server + blocking client.

The acceptance bar: served results are exactly equal (as path sets) to
direct :class:`CpeEnumerator` calls on the same graph state, under an
interleaving of ``query`` / ``watch`` / ``update`` over a live server;
deadline and admission rejections come back as structured protocol
errors, never a crash or hang.
"""

import random
import socket
import threading
import time

import pytest

from repro.baselines.bruteforce import path_set
from repro.graph.digraph import DynamicDiGraph
from repro.service.client import ServiceClient
from repro.service.engine import PathQueryEngine
from repro.service.protocol import (
    BadRequestError,
    DeadlineExceededError,
    NotFoundError,
    OverloadedError,
    UnknownOpError,
)
from repro.service.server import serve_in_thread
from tests.conftest import make_random_graph


@pytest.fixture()
def diamond_server():
    graph = DynamicDiGraph([(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)])
    engine = PathQueryEngine(graph, default_k=3)
    handle = serve_in_thread(engine)
    try:
        yield handle, graph
    finally:
        handle.stop()


class TestEndToEnd:
    def test_query_watch_update_interleaving_matches_direct(self):
        """The acceptance-criteria interleaving over a live server."""
        rng = random.Random(99)
        graph = make_random_graph(rng, n_lo=6, n_hi=8, max_edges=16)
        mirror = graph.copy()
        engine = PathQueryEngine(graph, default_k=4)
        handle = serve_in_thread(engine)
        try:
            with ServiceClient(handle.host, handle.port) as client:
                vertices = list(mirror.vertices())
                watched = set()
                for step in range(60):
                    u, v = rng.sample(vertices, 2)
                    roll = rng.random()
                    if roll < 0.3:
                        insert = not mirror.has_edge(u, v)
                        client.update(u, v, insert)
                        mirror.add_edge(u, v) if insert else \
                            mirror.remove_edge(u, v)
                    elif roll < 0.45 and (u, v) not in watched:
                        served = client.watch(u, v)
                        watched.add((u, v))
                        assert set(served) == path_set(mirror, u, v, 4)
                    else:
                        k = rng.randint(1, 4)
                        served = client.query(u, v, k)
                        direct = path_set(mirror, u, v, k)
                        assert set(served) == direct, (
                            f"step {step}: served q({u}, {v}, {k}) diverged"
                        )
        finally:
            handle.stop()

    def test_watch_deltas_reconstruct_final_result(self, diamond_server):
        handle, graph = diamond_server
        with ServiceClient(handle.host, handle.port) as client:
            maintained = set(client.watch(0, 3, k=3))
            stream = [(1, 2, True), (0, 3, False), (0, 1, False)]
            for u, v, insert in stream:
                result = client.update(u, v, insert)
                for pair in result["pairs"]:
                    if insert:
                        maintained |= set(pair["paths"])
                    else:
                        maintained -= set(pair["paths"])
            assert maintained == path_set(graph, 0, 3, 3)

    def test_batch_update_round_trip(self, diamond_server):
        handle, _ = diamond_server
        with ServiceClient(handle.host, handle.port) as client:
            client.watch(0, 3, k=3)
            result = client.batch_update(
                [(1, 2, True), (1, 2, False), (2, 1, True)]
            )
            assert result["received"] == 3
            assert result["cancelled"] == 2
            assert result["applied"] == 1

    def test_stats_over_the_wire(self, diamond_server):
        handle, _ = diamond_server
        with ServiceClient(handle.host, handle.port) as client:
            client.query(0, 3, 3)
            stats = client.stats()
            assert stats["served"]["query"] == 1
            assert stats["admission"]["admitted"] == 2
            assert stats["server"]["open_connections"] == 1

    def test_metrics_over_the_wire(self, diamond_server):
        from repro import obs

        handle, _ = diamond_server
        previous = obs.set_enabled(True)
        obs.reset()
        try:
            with ServiceClient(handle.host, handle.port) as client:
                client.query(0, 3, 3)
                result = client.metrics()
                assert result["enabled"] is True
                counters = result["metrics"]["counters"]
                assert counters["service.requests.query"] >= 1
                prom = client.metrics(format="prometheus")
                assert "service_requests_query" in prom["text"]
        finally:
            obs.set_enabled(previous)
            obs.reset()

    def test_two_clients_share_one_graph(self, diamond_server):
        handle, graph = diamond_server
        with ServiceClient(handle.host, handle.port) as a, \
                ServiceClient(handle.host, handle.port) as b:
            a.update(1, 2, True)
            assert set(b.query(0, 3, 3)) == path_set(graph, 0, 3, 3)

    def test_request_ids_are_echoed(self, diamond_server):
        handle, _ = diamond_server
        with ServiceClient(handle.host, handle.port) as client:
            response = client.request("stats")
            assert response.id == 1
            response = client.request("stats")
            assert response.id == 2


class TestStructuredErrors:
    def test_malformed_json_gets_bad_request_not_disconnect(
        self, diamond_server
    ):
        handle, _ = diamond_server
        with socket.create_connection(
            (handle.host, handle.port), timeout=5
        ) as sock:
            fh = sock.makefile("rwb")
            fh.write(b"this is not json\n")
            fh.flush()
            line = fh.readline()
            assert b'"bad_request"' in line
            # connection is still usable
            fh.write(b'{"id": 5, "op": "stats"}\n')
            fh.flush()
            line = fh.readline()
            assert b'"id":5' in line and b'"ok":true' in line

    def test_unknown_op(self, diamond_server):
        handle, _ = diamond_server
        with ServiceClient(handle.host, handle.port) as client:
            with pytest.raises(UnknownOpError):
                client.call("stats_v2")

    def test_id_echoed_on_validation_error(self, diamond_server):
        handle, _ = diamond_server
        with ServiceClient(handle.host, handle.port) as client:
            response = client.request("query", s=1, t=1, k=None)
            assert response.id == 1
            assert not response.ok

    def test_zero_deadline_is_deadline_exceeded(self, diamond_server):
        handle, _ = diamond_server
        with ServiceClient(handle.host, handle.port) as client:
            with pytest.raises(DeadlineExceededError):
                client.query(0, 3, 3, deadline_ms=0)
            # the server is unharmed
            assert client.query(0, 3, 3)

    def test_unwatch_unknown_pair(self, diamond_server):
        handle, _ = diamond_server
        with ServiceClient(handle.host, handle.port) as client:
            with pytest.raises(NotFoundError):
                client.unwatch(5, 6)


class TestAdmissionOverTheWire:
    def test_overload_returns_retry_after(self):
        graph = DynamicDiGraph([(0, 1), (1, 2)])
        engine = PathQueryEngine(graph, default_k=2)
        original = engine.handle

        def slow_handle(op, args):
            if op == "query":
                time.sleep(0.4)
            return original(op, args)

        engine.handle = slow_handle
        handle = serve_in_thread(engine, capacity=1, retry_after_ms=25)
        try:
            slow_result = {}

            def occupant():
                with ServiceClient(handle.host, handle.port) as client:
                    slow_result["paths"] = client.query(0, 2, 2)

            thread = threading.Thread(target=occupant)
            thread.start()
            time.sleep(0.1)  # let the slow query get admitted
            with ServiceClient(handle.host, handle.port) as client:
                with pytest.raises(OverloadedError) as info:
                    client.query(0, 2, 2)
                assert info.value.retry_after_ms == 25
            thread.join(timeout=5)
            assert slow_result["paths"] == [(0, 1, 2)]
        finally:
            handle.stop()

    def test_queued_request_expires_with_structured_error(self):
        graph = DynamicDiGraph([(0, 1), (1, 2)])
        engine = PathQueryEngine(graph, default_k=2)
        original = engine.handle

        def slow_handle(op, args):
            if op == "query":
                time.sleep(0.4)
            return original(op, args)

        engine.handle = slow_handle
        handle = serve_in_thread(engine, capacity=4)
        try:
            thread = threading.Thread(
                target=lambda: ServiceClient(
                    handle.host, handle.port
                ).query(0, 2, 2)
            )
            thread.start()
            time.sleep(0.1)
            with ServiceClient(handle.host, handle.port) as client:
                with pytest.raises(DeadlineExceededError):
                    client.query(0, 2, 2, deadline_ms=50)
            thread.join(timeout=5)
        finally:
            handle.stop()


class TestShutdown:
    def test_stop_refuses_new_connections(self):
        graph = DynamicDiGraph([(0, 1)])
        handle = serve_in_thread(PathQueryEngine(graph, default_k=2))
        host, port = handle.host, handle.port
        with ServiceClient(host, port) as client:
            client.stats()
        handle.stop()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=1)

    def test_stop_is_idempotent(self):
        graph = DynamicDiGraph([(0, 1)])
        handle = serve_in_thread(PathQueryEngine(graph, default_k=2))
        handle.stop()
        handle.stop()
