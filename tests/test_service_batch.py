"""Service-level batch query tests: wire validation, the byte-identity
equivalence gate, cache accounting, and the server's gather window.

The contract under test (docs/BATCHING.md): a ``batch_query`` answers
every member exactly as sequential ``query`` execution in arrival order
would — same bytes, same cache counters, same ``source`` labels — no
matter how the members group.
"""

import json
import random
import threading
import time

import pytest

from repro.baselines.bruteforce import path_set
from repro.graph.digraph import DynamicDiGraph
from repro.service.client import ServiceClient
from repro.service.engine import PathQueryEngine
from repro.service.loadgen import run_load
from repro.service.protocol import (
    BadRequestError,
    DeadlineExceededError,
    decode_request,
)
from repro.service.server import serve_in_thread
from tests.conftest import make_random_graph


def _diamond():
    return DynamicDiGraph(
        [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3), (3, 4), (1, 4)]
    )


def _request(op, **fields):
    payload = {"id": 1, "op": op}
    payload.update(fields)
    return decode_request(json.dumps(payload))


class TestProtocolValidation:
    def test_batch_query_decodes_triples(self):
        request = _request("batch_query", queries=[[0, 1, 3], ["a", "b", 2]])
        assert request.op == "batch_query"
        assert request.args["queries"] == [(0, 1, 3), ("a", "b", 2)]

    @pytest.mark.parametrize(
        "queries",
        [
            [],              # empty batch
            "nope",          # not a list
            [[0, 1]],        # wrong arity
            [[0, 1, 3, 9]],  # wrong arity
            [[0, 1, -1]],    # negative k
            [[0, 1, True]],  # bool is not a hop count
            [[0, 1, "3"]],   # non-int k
            [None],          # not a triple at all
        ],
    )
    def test_bad_queries_rejected(self, queries):
        with pytest.raises(BadRequestError):
            _request("batch_query", queries=queries)

    def test_missing_queries_field_rejected(self):
        with pytest.raises(BadRequestError):
            _request("batch_query")


class TestEquivalenceGate:
    """Fixed-seed byte-identity: batch == sequential, to the last byte."""

    def _twin_engines(self, rng, cache_budget_bytes):
        graph = make_random_graph(rng, n_lo=7, n_hi=9, max_edges=22)
        sequential = PathQueryEngine(
            graph.copy(), cache_budget_bytes=cache_budget_bytes
        )
        batched = PathQueryEngine(
            graph.copy(), cache_budget_bytes=cache_budget_bytes
        )
        return graph, sequential, batched

    def _assert_equivalent(self, sequential, batched, triples):
        expected = [
            sequential.handle("query", {"s": s, "t": t, "k": k})
            for s, t, k in triples
        ]
        out = batched.handle(
            "batch_query", {"queries": [list(t) for t in triples]}
        )
        assert len(out["results"]) == len(expected)
        for i, (want, got) in enumerate(zip(expected, out["results"])):
            assert json.dumps(want, sort_keys=True) == json.dumps(
                got, sort_keys=True
            ), f"member {i} diverged from sequential execution"
        seq_stats = sequential.handle("stats", {})
        bat_stats = batched.handle("stats", {})
        assert seq_stats["cache"] == bat_stats["cache"]
        # the batch envelope is tallied separately; member credit matches
        assert (
            seq_stats["served"]["query"] == bat_stats["served"]["query"]
        )
        return out

    def test_random_batches_byte_identical(self):
        rng = random.Random(1234)
        for round_no in range(8):
            budget = rng.choice([1, 4 << 10, 4 << 20])
            graph, sequential, batched = self._twin_engines(rng, budget)
            vertices = list(graph.vertices())
            triples = []
            while len(triples) < 12:
                s, t = rng.sample(vertices, 2)
                triples.append((s, t, rng.randint(1, 4)))
                if triples and rng.random() < 0.3:
                    triples.append(rng.choice(triples))  # force duplicates
            self._assert_equivalent(sequential, batched, triples[:12])

    def test_singleton_batch_matches_plain_query(self):
        rng = random.Random(7)
        _, sequential, batched = self._twin_engines(rng, 4 << 20)
        out = self._assert_equivalent(sequential, batched, [(0, 1, 3)])
        assert out["batch"]["singletons"] == 1
        assert out["batch"]["bfs_saved"] == 0

    def test_watched_members_byte_identical(self):
        graph = _diamond()
        sequential = PathQueryEngine(graph.copy(), default_k=3)
        batched = PathQueryEngine(graph.copy(), default_k=3)
        for engine in (sequential, batched):
            engine.handle("watch", {"s": 0, "t": 3, "k": 3})
        triples = [(0, 3, 3), (0, 4, 3), (0, 3, 3), (0, 3, 2)]
        out = self._assert_equivalent(sequential, batched, triples)
        sources = [member["source"] for member in out["results"]]
        assert sources[0] == "watched"
        assert sources[3] != "watched"  # same pair, different k

    def test_updates_between_batches_stay_equivalent(self):
        rng = random.Random(42)
        graph, sequential, batched = self._twin_engines(rng, 4 << 20)
        vertices = list(graph.vertices())
        for _ in range(5):
            u, v = rng.sample(vertices, 2)
            insert = not sequential.graph.has_edge(u, v)
            for engine in (sequential, batched):
                engine.handle("update", {"u": u, "v": v, "insert": insert})
            triples = [
                (*rng.sample(vertices, 2), rng.randint(1, 4))
                for _ in range(6)
            ]
            self._assert_equivalent(sequential, batched, triples)

    def test_invalid_member_is_a_bad_request(self):
        engine = PathQueryEngine(_diamond())
        with pytest.raises(BadRequestError):
            engine.handle("batch_query", {"queries": [(0, 3, 3), (1, 1, 2)]})


class TestCacheAccounting:
    """Satellite check: batching must not skew per-query cache counters.

    A "clever" batch executor that answers duplicate members from its
    memo *without* touching the cache would return the right paths but
    under-count hits and corrupt LRU recency — this test is the tripwire
    (it fails against such an implementation).
    """

    def test_duplicate_members_still_hit_the_cache(self):
        engine = PathQueryEngine(_diamond(), cache_budget_bytes=4 << 20)
        out = engine.handle(
            "batch_query",
            {"queries": [(0, 3, 3), (0, 3, 3), (0, 3, 3)]},
        )
        stats = engine.handle("stats", {})["cache"]
        assert stats["misses"] == 1
        assert stats["hits"] == 2  # the memo does NOT bypass the cache
        assert [m["source"] for m in out["results"]] == [
            "miss", "hit", "hit"
        ]
        assert out["batch"]["memo_answers"] == 2

    def test_lru_recency_matches_sequential_under_eviction(self):
        # A budget sized for ~2 entries: recency decides who is evicted,
        # so any reordering or skipped touch diverges the counters.
        graph = _diamond()
        probe = PathQueryEngine(graph.copy())
        probe.handle("query", {"s": 0, "t": 3, "k": 3})
        one_entry = probe.handle("stats", {})["cache"]["current_bytes"]
        budget = int(one_entry * 2.5)

        triples = [
            (0, 3, 3), (0, 4, 3), (1, 4, 2),  # fills + evicts
            (0, 3, 3),                        # hit or miss: recency decides
            (0, 4, 3), (0, 3, 3), (1, 4, 2),
        ]
        sequential = PathQueryEngine(graph.copy(), cache_budget_bytes=budget)
        batched = PathQueryEngine(graph.copy(), cache_budget_bytes=budget)
        for s, t, k in triples:
            sequential.handle("query", {"s": s, "t": t, "k": k})
        batched.handle("batch_query", {"queries": [list(t) for t in triples]})
        seq_cache = sequential.handle("stats", {})["cache"]
        bat_cache = batched.handle("stats", {})["cache"]
        assert seq_cache == bat_cache
        assert seq_cache["evictions"] > 0  # the scenario exercised eviction


class TestGatherWindowOverTheWire:
    def test_concurrent_queries_form_one_batch(self):
        graph = _diamond()
        engine = PathQueryEngine(graph, default_k=3)
        handle = serve_in_thread(engine, batch_window_ms=80)
        try:
            results = {}
            barrier = threading.Barrier(4)

            def worker(name, s, t, k):
                with ServiceClient(handle.host, handle.port) as client:
                    barrier.wait()
                    results[name] = client.query(s, t, k)

            specs = [(0, 3, 3), (0, 4, 3), (0, 3, 3), (1, 4, 2)]
            threads = [
                threading.Thread(target=worker, args=(i, *spec))
                for i, spec in enumerate(specs)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for i, (s, t, k) in enumerate(specs):
                assert set(results[i]) == path_set(graph, s, t, k)

            with ServiceClient(handle.host, handle.port) as client:
                stats = client.stats()
            assert stats["batching"]["members"] == 4
            window = stats["server"]["batch_window"]
            assert window["window_ms"] == 80
            assert window["flushed_members"] == 4
            assert 1 <= window["flushed_batches"] <= 2
        finally:
            handle.stop()

    def test_expired_member_rejected_others_answered(self):
        graph = _diamond()
        engine = PathQueryEngine(graph, default_k=3)
        handle = serve_in_thread(engine, batch_window_ms=120)
        try:
            outcome = {}

            def doomed():
                with ServiceClient(handle.host, handle.port) as client:
                    try:
                        client.query(0, 3, 3, deadline_ms=1)
                    except DeadlineExceededError as exc:
                        outcome["error"] = exc

            def survivor():
                with ServiceClient(handle.host, handle.port) as client:
                    outcome["paths"] = client.query(0, 4, 3)

            threads = [
                threading.Thread(target=doomed),
                threading.Thread(target=survivor),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert isinstance(outcome["error"], DeadlineExceededError)
            assert set(outcome["paths"]) == path_set(graph, 0, 4, 3)
        finally:
            handle.stop()

    def test_update_landing_mid_window_is_visible_to_the_batch(self):
        graph = DynamicDiGraph([(0, 1), (1, 3)])
        engine = PathQueryEngine(graph, default_k=2)
        handle = serve_in_thread(engine, batch_window_ms=400)
        try:
            answer = {}

            def querier():
                with ServiceClient(handle.host, handle.port) as client:
                    answer["paths"] = client.query(0, 3, 2)

            thread = threading.Thread(target=querier)
            thread.start()
            time.sleep(0.1)  # inside the window
            with ServiceClient(handle.host, handle.port) as client:
                client.insert_edge(0, 3)  # updates are never windowed
            thread.join()
            # the batch ran after the update, exactly like a sequential
            # query that queued behind it
            assert set(answer["paths"]) == {(0, 3), (0, 1, 3)}
        finally:
            handle.stop()

    def test_shutdown_flushes_the_window(self):
        graph = _diamond()
        engine = PathQueryEngine(graph, default_k=3)
        handle = serve_in_thread(engine, batch_window_ms=10_000)
        try:
            answer = {}

            def querier():
                with ServiceClient(handle.host, handle.port) as client:
                    answer["paths"] = client.query(0, 3, 3)

            thread = threading.Thread(target=querier)
            thread.start()
            time.sleep(0.15)  # let the query reach the (long) window
        finally:
            handle.stop()  # must flush, not strand the member
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert set(answer["paths"]) == path_set(graph, 0, 3, 3)


class TestClientAndLoadgen:
    def test_explicit_batch_query_round_trip(self):
        graph = _diamond()
        engine = PathQueryEngine(graph, default_k=3)
        handle = serve_in_thread(engine)
        try:
            with ServiceClient(handle.host, handle.port) as client:
                out = client.batch_query([(0, 3, 3), (0, 4, 3), (0, 3, 3)])
            assert [set(m["paths"]) for m in out["results"]] == [
                path_set(graph, 0, 3, 3),
                path_set(graph, 0, 4, 3),
                path_set(graph, 0, 3, 3),
            ]
            assert out["batch"]["members"] == 3
            assert out["batch"]["memo_answers"] == 1
        finally:
            handle.stop()

    def test_run_load_batch_mode_counts_members(self):
        graph = _diamond()
        engine = PathQueryEngine(graph, default_k=3)
        handle = serve_in_thread(engine)
        try:
            ops = [
                ("query", 0, 3, 3),
                ("query", 0, 4, 3),
                ("query", 1, 4, 2),
                ("update", 2, 4, True),
                ("query", 0, 3, 3),
            ]
            report = run_load(handle.host, handle.port, ops, batch_size=2)
            assert report.requests == 5
            assert report.ok == 5
            assert not report.errors
            assert len(report.latencies) == 5
            # update flushed the open chunk first, so ordering held and
            # the final query saw the inserted edge's graph
            stats = engine.handle("stats", {})
            assert stats["batching"]["members"] == 4
        finally:
            handle.stop()

    def test_run_load_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            run_load("127.0.0.1", 1, [], batch_size=0)
