"""Tests for the fraud-detection application layer."""

import random

import pytest

from repro.apps.fraud import RiskMonitor, RiskPolicy
from repro.baselines.bruteforce import path_set
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import community_graph


class TestRiskPolicy:
    def test_default_weight_prefers_short_flows(self):
        policy = RiskPolicy()
        assert policy.weight((0, 1)) == 1.0
        assert policy.weight((0, 1, 2)) == 0.5

    def test_score_sums_weights(self):
        policy = RiskPolicy()
        assert policy.score([(0, 1), (0, 1, 2)]) == pytest.approx(1.5)

    def test_custom_weight(self):
        policy = RiskPolicy(weight=lambda p: 2.0)
        assert policy.score([(0, 1), (0, 2)]) == 4.0


class TestRiskMonitor:
    def make(self):
        g = DynamicDiGraph([(0, 1), (1, 2), (0, 2)])
        return RiskMonitor(g, RiskPolicy(threshold=1.2, max_hops=3))

    def test_watch_scores_initial_paths(self):
        mon = self.make()
        score = mon.watch(0, 2)
        assert score == pytest.approx(1.0 + 0.5)

    def test_transaction_raises_alert_on_crossing(self):
        g = DynamicDiGraph([(0, 1)])
        mon = RiskMonitor(g, RiskPolicy(threshold=1.2, max_hops=3))
        assert mon.watch(0, 2) == 0.0
        assert mon.transaction(1, 2) == []  # 0.5 < threshold
        alerts = mon.transaction(0, 2)      # 1.5 > threshold
        assert len(alerts) == 1
        assert alerts[0].pair == (0, 2)
        assert alerts[0].score == pytest.approx(1.5)
        assert "ALERT" in str(alerts[0])

    def test_no_realert_while_above_threshold(self):
        g = DynamicDiGraph([(0, 1), (1, 2), (0, 2)])
        mon = RiskMonitor(g, RiskPolicy(threshold=1.2, max_hops=4))
        mon.watch(0, 2)  # already above: counts as alerted
        assert mon.transaction(0, 3) == []
        assert mon.transaction(3, 2) == []  # raises score, still no new alert
        assert mon.alerts == []

    def test_realert_after_recovery(self):
        g = DynamicDiGraph([(0, 1)])
        mon = RiskMonitor(g, RiskPolicy(threshold=0.9, max_hops=2))
        mon.watch(0, 2)
        assert len(mon.transaction(1, 2)) == 0  # 0.5
        assert len(mon.transaction(0, 2)) == 1  # 1.5: alert
        assert mon.expire(0, 2) == []           # back to 0.5
        assert len(mon.transaction(0, 2)) == 1  # crosses again: new alert
        assert mon.alerts[-1].sequence == 2

    def test_unwatch(self):
        mon = self.make()
        mon.watch(0, 2)
        assert mon.unwatch(0, 2) is True
        assert mon.unwatch(0, 2) is False
        with pytest.raises(KeyError):
            mon.score(0, 2)

    def test_scores_view_is_copy(self):
        mon = self.make()
        mon.watch(0, 2)
        snapshot = mon.scores()
        snapshot[(0, 2)] = 999.0
        assert mon.score(0, 2) != 999.0

    def test_audit_zero_drift_after_random_stream(self):
        rng = random.Random(1)
        g = community_graph(3, 8, 0.3, 10, seed=2)
        mon = RiskMonitor(g, RiskPolicy(threshold=50.0, max_hops=4))
        mon.watch(0, 20)
        mon.watch(5, 13)
        accounts = list(range(24))
        for _ in range(80):
            u, v = rng.sample(accounts, 2)
            if g.has_edge(u, v):
                mon.expire(u, v)
            else:
                mon.transaction(u, v)
        assert all(d < 1e-9 for d in mon.audit().values())

    def test_scores_match_bruteforce(self):
        mon = self.make()
        mon.watch(0, 2)
        mon.transaction(2, 0)
        mon.transaction(1, 0)
        want = sum(
            1.0 / (len(p) - 1) for p in path_set(mon.graph, 0, 2, 3)
        )
        assert mon.score(0, 2) == pytest.approx(want)
