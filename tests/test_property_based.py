"""Property-based tests (hypothesis) for the core invariants."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.baselines.bruteforce import path_set
from repro.core.construction import build_index
from repro.core.distance import DistanceMap
from repro.core.enumerator import CpeEnumerator
from repro.core.paths import hops, is_simple
from repro.core.plan import balanced_plan
from repro.graph.digraph import DynamicDiGraph

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, max_n=8, max_edges=18):
    """A small random digraph as (n, edge list)."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    pairs = st.tuples(
        st.integers(0, n - 1), st.integers(0, n - 1)
    ).filter(lambda e: e[0] != e[1])
    edges = draw(st.lists(pairs, max_size=max_edges))
    return n, edges


@st.composite
def graph_queries(draw):
    n, edges = draw(graphs())
    s = draw(st.integers(0, n - 1))
    t = draw(st.integers(0, n - 1).filter(lambda v: v != s))
    k = draw(st.integers(1, 6))
    return n, edges, s, t, k


@st.composite
def update_streams(draw):
    n, edges, s, t, k = draw(graph_queries())
    pairs = st.tuples(
        st.integers(0, n - 1), st.integers(0, n - 1)
    ).filter(lambda e: e[0] != e[1])
    stream = draw(st.lists(pairs, max_size=12))
    return n, edges, s, t, k, stream


def build(n, edges):
    return DynamicDiGraph(edges, vertices=range(n))


@given(graph_queries())
@SETTINGS
def test_startup_equals_bruteforce(case):
    n, edges, s, t, k = case
    g = build(n, edges)
    cpe = CpeEnumerator(g.copy(), s, t, k)
    got = cpe.startup()
    assert len(got) == len(set(got))
    assert set(got) == path_set(g, s, t, k)


@given(update_streams())
@SETTINGS
def test_update_stream_deltas_are_exact(case):
    n, edges, s, t, k, stream = case
    g = build(n, edges)
    cpe = CpeEnumerator(g, s, t, k)
    current = path_set(g, s, t, k)
    for u, v in stream:
        if g.has_edge(u, v):
            result = cpe.delete_edge(u, v)
            fresh = path_set(g, s, t, k)
            assert set(result.paths) == current - fresh
        else:
            result = cpe.insert_edge(u, v)
            fresh = path_set(g, s, t, k)
            assert set(result.paths) == fresh - current
        assert len(result.paths) == len(set(result.paths))
        current = fresh
    assert set(cpe.startup()) == current


@given(update_streams())
@SETTINGS
def test_index_invariant_after_stream(case):
    n, edges, s, t, k, stream = case
    g = build(n, edges)
    cpe = CpeEnumerator(g, s, t, k)
    for u, v in stream:
        if g.has_edge(u, v):
            cpe.delete_edge(u, v)
        else:
            cpe.insert_edge(u, v)
    fresh = build_index(g, s, t, k, forced_plan=cpe.plan)
    assert cpe.index.left.as_dict() == fresh.index.left.as_dict()
    assert cpe.index.right.as_dict() == fresh.index.right.as_dict()
    assert cpe.index.direct_edge == fresh.index.direct_edge


@given(update_streams())
@SETTINGS
def test_distance_maps_stay_exact(case):
    n, edges, s, t, k, stream = case
    g = build(n, edges)
    d = DistanceMap(g, s, horizon=k)
    for u, v in stream:
        if g.has_edge(u, v):
            g.remove_edge(u, v)
            d.tighten_delete(u, v)
        else:
            g.add_edge(u, v)
            d.relax_insert(u, v)
        assert d.is_consistent()


@given(graph_queries())
@SETTINGS
def test_stored_partials_are_admissible(case):
    n, edges, s, t, k = case
    g = build(n, edges)
    result = build_index(g, s, t, k)
    l, r = result.index.plan.l, result.index.plan.r
    for length, vertex, path in result.index.left.entries():
        assert is_simple(path)
        assert path[0] == s and path[-1] == vertex and t not in path
        assert 1 <= hops(path) == length <= l
        assert length + result.dist_t.get(vertex) <= k
    for length, vertex, path in result.index.right.entries():
        assert is_simple(path)
        assert path[0] == vertex and path[-1] == t and s not in path
        assert 1 <= hops(path) == length <= r
        assert length + result.dist_s.get(vertex) <= k


@given(st.integers(min_value=2, max_value=12))
def test_balanced_plan_properties(k):
    plan = balanced_plan(k)
    assert sorted(i + j for i, j in plan) == list(range(2, k + 1))
    assert plan.l + plan.r == k
    assert abs(plan.l - plan.r) <= 1


@given(graph_queries())
@SETTINGS
def test_inverse_updates_restore_result(case):
    n, edges, s, t, k = case
    g = build(n, edges)
    cpe = CpeEnumerator(g, s, t, k)
    before = set(cpe.startup())
    target = next(iter(g.edges()), None)
    if target is None:
        return
    u, v = target
    deleted = cpe.delete_edge(u, v)
    restored = cpe.insert_edge(u, v)
    assert set(deleted.paths) == set(restored.paths)
    assert set(cpe.startup()) == before
