"""Public-API contract tests: imports, __all__, docstrings.

These pin the surface documented in docs/API.md — a rename or an
accidentally-removed export fails here before it fails a user.
"""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.graph",
    "repro.graph.digraph",
    "repro.graph.frozen",
    "repro.graph.generators",
    "repro.graph.io",
    "repro.graph.stats",
    "repro.graph.scc",
    "repro.graph.temporal",
    "repro.graph.datasets",
    "repro.core",
    "repro.core.paths",
    "repro.core.distance",
    "repro.core.plan",
    "repro.core.index",
    "repro.core.construction",
    "repro.core.enumeration",
    "repro.core.maintenance",
    "repro.core.maintenance_strict",
    "repro.core.enumerator",
    "repro.core.monitor",
    "repro.core.batch",
    "repro.core.results",
    "repro.core.estimate",
    "repro.core.serialize",
    "repro.core.verify",
    "repro.baselines",
    "repro.apps",
    "repro.related",
    "repro.workloads",
    "repro.experiments",
    "repro.experiments.report",
    "repro.analysis",
    "repro.analysis.engine",
    "repro.analysis.findings",
    "repro.analysis.registry",
    "repro.analysis.sources",
    "repro.analysis.reporters",
    "repro.analysis.apidoc",
    "repro.analysis.visitor",
    "repro.obs",
    "repro.obs.metrics",
    "repro.obs.spans",
    "repro.obs.report",
    "repro.cli",
]


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_module_imports_and_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


def test_top_level_exports():
    import repro

    assert set(repro.__all__) >= {
        "CpeEnumerator", "UpdateResult", "DynamicDiGraph", "EdgeUpdate"
    }
    for name in repro.__all__:
        assert hasattr(repro, name)


def test_core_exports():
    from repro import core

    for name in core.__all__:
        assert hasattr(core, name)


def test_baseline_enumerators_share_static_shape():
    from repro.baselines import (
        BcDfsEnumerator,
        BcJoinEnumerator,
        PathEnumEnumerator,
        TDfsEnumerator,
    )

    for cls in (TDfsEnumerator, BcDfsEnumerator, BcJoinEnumerator,
                PathEnumEnumerator):
        assert hasattr(cls, "paths")
        assert cls.name  # display label for experiment tables


def test_dynamic_enumerators_share_protocol():
    from repro.baselines import CsmDcgEnumerator, CsmStarEnumerator
    from repro.baselines.recompute import RecomputeEnumerator
    from repro.core.enumerator import CpeEnumerator

    for cls in (CpeEnumerator, CsmStarEnumerator, CsmDcgEnumerator,
                RecomputeEnumerator):
        for method in ("startup", "insert_edge", "delete_edge", "apply"):
            assert hasattr(cls, method), f"{cls.__name__} lacks {method}"


def test_public_callables_have_docstrings():
    """Every public function/class in the core package is documented."""
    import repro.core.construction
    import repro.core.distance
    import repro.core.enumeration
    import repro.core.enumerator
    import repro.core.index
    import repro.core.maintenance

    for module in (
        repro.core.construction,
        repro.core.distance,
        repro.core.enumeration,
        repro.core.enumerator,
        repro.core.index,
        repro.core.maintenance,
    ):
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if getattr(obj, "__module__", None) != module.__name__:
                    continue  # re-export
                assert obj.__doc__, f"{module.__name__}.{name} undocumented"
                if inspect.isclass(obj):
                    for meth_name, meth in vars(obj).items():
                        if meth_name.startswith("_"):
                            continue
                        if inspect.isfunction(meth):
                            assert meth.__doc__, (
                                f"{module.__name__}.{name}.{meth_name} "
                                f"undocumented"
                            )


def test_experiment_drivers_expose_run_and_main():
    from repro import experiments

    names = (
        "table1", "fig6_startup", "fig7_update", "fig8_insdel",
        "fig9_vary_k", "fig10_hot", "fig11_scalability", "fig12_memory",
        "ablation", "throughput", "density_sweep", "csm_variants",
    )
    for name in names:
        module = importlib.import_module(f"repro.experiments.{name}")
        assert callable(module.run)
        assert callable(module.main)
