"""Tests for the service wire protocol (encode/decode/validate)."""

import json

import pytest

from repro.service.protocol import (
    AlreadyWatchedError,
    BadRequestError,
    DeadlineExceededError,
    OverloadedError,
    Request,
    ServiceError,
    UnknownOpError,
    decode_paths,
    decode_request,
    decode_response,
    encode_paths,
    error_from_wire,
    error_response,
    ok_response,
)


def encode(payload) -> str:
    return json.dumps(payload)


class TestDecodeRequest:
    def test_query_round_trip(self):
        req = decode_request(
            encode({"id": 1, "op": "query", "s": 3, "t": 42, "k": 6})
        )
        assert req.id == 1
        assert req.op == "query"
        assert req.args == {"s": 3, "t": 42, "k": 6}
        assert req.deadline_ms is None

    def test_deadline_is_kept(self):
        req = decode_request(
            encode({"id": "a", "op": "stats", "deadline_ms": 250})
        )
        assert req.deadline_ms == 250

    def test_string_vertices_allowed(self):
        req = decode_request(
            encode({"id": 2, "op": "unwatch", "s": "alice", "t": "bob"})
        )
        assert req.args == {"s": "alice", "t": "bob"}

    def test_watch_k_is_optional(self):
        req = decode_request(encode({"id": 3, "op": "watch", "s": 0, "t": 1}))
        assert "k" not in req.args
        req = decode_request(
            encode({"id": 3, "op": "watch", "s": 0, "t": 1, "k": 4})
        )
        assert req.args["k"] == 4

    def test_update_fields(self):
        req = decode_request(
            encode({"id": 4, "op": "update", "u": 1, "v": 2, "insert": False})
        )
        assert req.args == {"u": 1, "v": 2, "insert": False}

    def test_metrics_format_is_optional_and_validated(self):
        req = decode_request(encode({"id": 5, "op": "metrics"}))
        assert req.op == "metrics"
        assert "format" not in req.args
        req = decode_request(
            encode({"id": 5, "op": "metrics", "format": "prometheus"})
        )
        assert req.args == {"format": "prometheus"}
        with pytest.raises(BadRequestError):
            decode_request(
                encode({"id": 5, "op": "metrics", "format": "xml"})
            )

    def test_batch_update_triples(self):
        req = decode_request(
            encode({
                "id": 5,
                "op": "batch_update",
                "updates": [[1, 2, True], ["x", "y", False]],
            })
        )
        assert req.args["updates"] == [(1, 2, True), ("x", "y", False)]

    def test_request_to_wire_round_trips(self):
        original = Request(9, "query", {"s": 1, "t": 2, "k": 3}, 100)
        again = decode_request(original.to_wire())
        assert again == original

    @pytest.mark.parametrize("line", [
        "not json at all",
        "[1, 2, 3]",
        '{"op": 5}',
        '{"id": 1}',
        '{"id": [], "op": "stats"}',
        '{"id": 1, "op": "query", "s": 0, "t": 1}',            # missing k
        '{"id": 1, "op": "query", "s": 0, "t": 1, "k": -1}',   # bad k
        '{"id": 1, "op": "query", "s": 0, "t": 1, "k": true}',
        '{"id": 1, "op": "query", "s": [0], "t": 1, "k": 2}',  # bad vertex
        '{"id": 1, "op": "query", "s": true, "t": 1, "k": 2}',
        '{"id": 1, "op": "update", "u": 0, "v": 1, "insert": 1}',
        '{"id": 1, "op": "batch_update", "updates": 3}',
        '{"id": 1, "op": "batch_update", "updates": [[1, 2]]}',
        '{"id": 1, "op": "batch_update", "updates": [[1, 2, "yes"]]}',
        '{"id": 1, "op": "stats", "deadline_ms": -5}',
        '{"id": 1, "op": "stats", "deadline_ms": "soon"}',
    ])
    def test_malformed_requests_raise_bad_request(self, line):
        with pytest.raises(BadRequestError):
            decode_request(line)

    def test_unknown_op_has_its_own_code(self):
        with pytest.raises(UnknownOpError, match="teleport"):
            decode_request(encode({"id": 1, "op": "teleport"}))

    def test_bytes_input_accepted(self):
        req = decode_request(b'{"id": 1, "op": "stats"}')
        assert req.op == "stats"


class TestResponses:
    def test_ok_round_trip(self):
        wire = ok_response(7, {"count": 2}).to_wire()
        response = decode_response(wire)
        assert response.ok and response.id == 7
        assert response.result == {"count": 2}
        assert response.raise_for_error() is response

    def test_error_round_trip_restores_exception_type(self):
        wire = error_response(
            8, OverloadedError("busy", retry_after_ms=50)
        ).to_wire()
        response = decode_response(wire)
        assert not response.ok
        with pytest.raises(OverloadedError) as info:
            response.raise_for_error()
        assert info.value.retry_after_ms == 50
        assert info.value.code == "overloaded"

    def test_every_error_class_round_trips(self):
        for cls in (BadRequestError, AlreadyWatchedError,
                    DeadlineExceededError, OverloadedError):
            restored = error_from_wire(cls("boom").to_wire())
            assert type(restored) is cls
            assert restored.message == "boom"

    def test_unknown_error_code_degrades_to_internal(self):
        restored = error_from_wire({"code": "martian", "message": "?"})
        assert isinstance(restored, ServiceError)
        assert restored.code == "internal"

    def test_decode_response_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_response("nope")
        with pytest.raises(ValueError):
            decode_response('{"id": 1}')


class TestPaths:
    def test_encode_decode_round_trip(self):
        paths = [(0, 1, 2), ("s", "a", "t")]
        assert decode_paths(encode_paths(paths)) == paths

    def test_encoded_paths_are_json_serializable(self):
        json.dumps(encode_paths([(0, 1), (2, 3, 4)]))
