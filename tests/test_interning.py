"""Tests for the interned array substrate.

Covers the dense-int vertex id space (:mod:`repro.graph.interning`),
the optional-numpy switch (:mod:`repro.graph.npcompat`), the graph's
dual-plane adjacency, the packed join levels / join program on the
index, and the equivalence of the scalar and numpy join probes — the
two legs must agree path-for-path, in order.
"""

import random

import pytest

import repro.core.enumeration as enumeration_mod
import repro.core.index as index_mod
from repro.core.enumeration import enumerate_full, enumerate_full_list
from repro.core.enumerator import CpeEnumerator
from repro.graph.digraph import DynamicDiGraph
from repro.graph.interning import VertexInterner
from repro.graph.npcompat import NO_NUMPY_ENV, get_numpy, numpy_available
from tests.conftest import make_random_graph, random_query


# ----------------------------------------------------------------------
# VertexInterner
# ----------------------------------------------------------------------
class TestVertexInterner:
    def test_ids_are_dense_and_insertion_ordered(self):
        interner = VertexInterner()
        assert [interner.intern(v) for v in "cab"] == [0, 1, 2]
        assert interner.vertices() == ["c", "a", "b"]

    def test_intern_is_idempotent(self):
        interner = VertexInterner()
        assert interner.intern("x") == interner.intern("x") == 0
        assert len(interner) == 1

    def test_id_of_and_get(self):
        interner = VertexInterner()
        interner.intern(41)
        assert interner.id_of(41) == 0
        assert interner.get(41) == 0
        assert interner.get("missing") == -1
        assert interner.get("missing", default=-7) == -7
        with pytest.raises(KeyError):
            interner.id_of("missing")

    def test_vertex_of_inverts_intern(self):
        interner = VertexInterner()
        for v in ("s", "t", 3, (1, 2)):
            assert interner.vertex_of(interner.intern(v)) == v

    def test_clone_is_independent(self):
        interner = VertexInterner()
        interner.intern("a")
        twin = interner.clone()
        twin.intern("b")
        assert "b" in twin and "b" not in interner
        assert twin.id_of("a") == interner.id_of("a") == 0

    def test_contains_and_iter(self):
        interner = VertexInterner()
        interner.intern(1)
        interner.intern(2)
        assert 1 in interner and 3 not in interner
        assert list(interner) == [1, 2]


# ----------------------------------------------------------------------
# npcompat
# ----------------------------------------------------------------------
class TestNpCompat:
    def test_env_flag_forces_fallback(self, monkeypatch):
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        assert get_numpy() is None
        assert not numpy_available()

    def test_zero_flag_means_enabled(self, monkeypatch):
        monkeypatch.setenv(NO_NUMPY_ENV, "0")
        assert get_numpy() is not None or not numpy_available()

    def test_flag_is_reread_each_call(self, monkeypatch):
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        assert get_numpy() is None
        monkeypatch.delenv(NO_NUMPY_ENV)
        numpy = pytest.importorskip("numpy")
        assert get_numpy() is numpy


# ----------------------------------------------------------------------
# Dual-plane adjacency
# ----------------------------------------------------------------------
def assert_planes_in_lockstep(graph):
    """The int-id arrays must mirror the dict adjacency exactly."""
    interner = graph.interner
    out_ids, _ = graph.int_adjacency()
    in_ids, _ = graph.int_adjacency(reverse=True)
    for v in graph.vertices():
        iid = interner.id_of(v)
        assert [interner.vertex_of(i) for i in out_ids[iid]] == list(
            graph.out_neighbors(v)
        )
        assert [interner.vertex_of(i) for i in in_ids[iid]] == list(
            graph.in_neighbors(v)
        )


class TestDualPlaneAdjacency:
    def test_lockstep_after_random_churn(self):
        rng = random.Random(17)
        g = make_random_graph(rng)
        vs = list(g.vertices())
        for _ in range(60):
            u, v = rng.sample(vs, 2)
            if g.has_edge(u, v):
                g.remove_edge(u, v)
            else:
                g.add_edge(u, v)
        assert_planes_in_lockstep(g)

    def test_vertex_removal_and_readd_reuses_id(self):
        g = DynamicDiGraph([(0, 1), (1, 2), (2, 0)])
        vid = g.interner.id_of(1)
        g.remove_vertex(1)
        assert_planes_in_lockstep(g)
        g.add_edge(1, 2)
        assert g.interner.id_of(1) == vid
        assert_planes_in_lockstep(g)

    def test_copy_detaches_the_array_plane(self):
        g = DynamicDiGraph([(0, 1), (1, 2)])
        twin = g.copy()
        twin.add_edge(2, 0)
        twin.remove_edge(0, 1)
        assert g.has_edge(0, 1) and not g.has_edge(2, 0)
        assert_planes_in_lockstep(g)
        assert_planes_in_lockstep(twin)

    def test_reverse_view_int_adjacency(self):
        g = DynamicDiGraph([(0, 1), (0, 2)])
        fwd_in, _ = g.int_adjacency(reverse=True)
        rev_out, _ = g.reverse_view().int_adjacency()
        assert [list(a) for a in fwd_in] == [list(a) for a in rev_out]

    def test_packed_adjacency_is_csr_of_the_dict_plane(self):
        rng = random.Random(5)
        g = make_random_graph(rng)
        vertices, indptr, indices = g.packed_adjacency()
        assert vertices == list(g.vertices())
        assert indptr[0] == 0 and indptr[-1] == len(indices)
        for pos, v in enumerate(vertices):
            neigh = [
                vertices[indices[slot]]
                for slot in range(indptr[pos], indptr[pos + 1])
            ]
            assert neigh == list(g.out_neighbors(v))

    def test_packed_adjacency_numpy_and_fallback_agree(self, monkeypatch):
        pytest.importorskip("numpy")
        rng = random.Random(23)
        g = make_random_graph(rng)
        with_np = g.packed_adjacency()
        monkeypatch.setenv(NO_NUMPY_ENV, "1")
        assert g.packed_adjacency() == with_np


# ----------------------------------------------------------------------
# Packed join levels and the join program
# ----------------------------------------------------------------------
def make_indexed_enumerator():
    g = DynamicDiGraph(
        [(0, 1), (1, 2), (0, 2), (2, 3), (1, 3), (0, 4), (4, 3), (4, 2)]
    )
    cpe = CpeEnumerator(g, 0, 3, 4)
    cpe.startup()
    return cpe


class TestPackedLevels:
    def test_packed_level_mirrors_the_dict_walk(self):
        cpe = make_indexed_enumerator()
        index = cpe.index
        for length in index.left.lengths():
            level = index.packed_left(length)
            if level is None:  # level exists but holds no paths
                assert index.left.count_at_length(length) == 0
                continue
            walked = [
                path
                for vertex, paths in index.left.bucket(length).items()
                for path in paths
            ]
            assert level.flat_paths == walked
            for vertex, (start, end, vcbit) in level.slots.items():
                assert all(
                    p[-1] == vertex for p in level.flat_paths[start:end]
                )
                assert vcbit and (vcbit & (vcbit - 1)) == 0  # one bit

    def test_masks_encode_exact_vertex_sets(self):
        cpe = make_indexed_enumerator()
        index = cpe.index
        for length in index.right.lengths():
            level = index.packed_right(length)
            if level is None:  # level exists but holds no paths
                assert index.right.count_at_length(length) == 0
                continue
            assert level.tails is not None
            for pos, path in enumerate(level.flat_paths):
                expected = 0
                for v in path:
                    expected |= 1 << index._bits.id_of(v)
                assert level.masks[pos] == expected
                assert level.tails[pos] == path[1:]

    def test_version_bump_invalidates_the_cache(self):
        cpe = make_indexed_enumerator()
        index = cpe.index
        before = index.packed_program()
        cpe.insert_edge(1, 4)
        after = index.packed_program()
        assert after is not before
        assert index.packed_program() is after  # stable until next write

    def test_program_survives_no_op_reads(self):
        cpe = make_indexed_enumerator()
        index = cpe.index
        program = index.packed_program()
        list(enumerate_full(index))
        index.left.bucket(1)
        assert index.packed_program() is program


# ----------------------------------------------------------------------
# Join-probe equivalence: generator vs list vs numpy block
# ----------------------------------------------------------------------
class TestJoinEquivalence:
    def test_list_variant_matches_generator(self):
        rng = random.Random(101)
        for _ in range(20):
            g = make_random_graph(rng)
            s, t, k = random_query(rng, g)
            cpe = CpeEnumerator(g, s, t, k)
            assert cpe.startup() == list(enumerate_full(cpe.index))

    def test_numpy_block_probe_matches_scalar(self, monkeypatch):
        pytest.importorskip("numpy")
        # Force every bucket through the block probe, then compare with
        # the forced pure fallback: identical paths, identical order.
        rng = random.Random(303)
        for _ in range(10):
            g = make_random_graph(rng)
            s, t, k = random_query(rng, g)
            cpe = CpeEnumerator(g, s, t, k)
            index = cpe.index
            monkeypatch.setattr(enumeration_mod, "_NP_PROBE_MIN", 1)
            index._program = None  # drop the flat-probe linearization
            monkeypatch.setattr(index_mod, "PACK_FLAT_STEP_MAX", 0)
            blocked = enumerate_full_list(index)
            index._program = None
            monkeypatch.setenv(NO_NUMPY_ENV, "1")
            scalar = enumerate_full_list(index)
            monkeypatch.delenv(NO_NUMPY_ENV)
            assert blocked == scalar

    def test_update_then_enumerate_matches_fresh_build(self):
        rng = random.Random(77)
        for _ in range(10):
            g = make_random_graph(rng)
            s, t, k = random_query(rng, g)
            cpe = CpeEnumerator(g, s, t, k)
            cpe.startup()
            for _ in range(8):
                u, v = rng.sample(list(g.vertices()), 2)
                if g.has_edge(u, v):
                    cpe.delete_edge(u, v)
                else:
                    cpe.insert_edge(u, v)
            fresh = CpeEnumerator(g.copy(), s, t, k)
            assert sorted(cpe.startup()) == sorted(fresh.startup())
