"""Documentation-sync tests: the README's code must actually run."""

import re
from pathlib import Path

ROOT = Path(__file__).parent.parent


def python_blocks(markdown_path):
    text = markdown_path.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, flags=re.S)


def test_readme_quickstart_block_runs():
    blocks = python_blocks(ROOT / "README.md")
    assert blocks, "README lost its quickstart code block"
    namespace = {}
    exec(blocks[0], namespace)  # noqa: S102 - doc sync by construction
    cpe = namespace["cpe"]
    # the quickstart's claimed end state holds: deleting (s, a) leaves
    # only the path through b
    assert set(cpe.startup()) == {("s", "b", "t")}
    assert set(namespace["result"].paths) == {
        ("s", "a", "t"), ("s", "a", "b", "t")
    }


def test_package_docstring_example_runs():
    import repro

    match = re.search(r"    (from repro.*?)(?:\n\n|\Z)", repro.__doc__, re.S)
    assert match, "package docstring lost its example"
    code = "\n".join(
        line[4:] if line.startswith("    ") else line
        for line in match.group(1).splitlines()
        if not line.strip().startswith("print(")  # keep test output quiet
        or True
    )
    namespace = {}
    exec(code.replace("print(", "_ = ("), namespace)  # noqa: S102


def test_experiments_md_references_archived_run():
    text = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
    archive = ROOT / "benchmarks" / "results" / "full_run_scale1.txt"
    assert "full_run_scale1.txt" in text
    assert archive.exists(), "the archived run EXPERIMENTS.md cites is missing"
    archived = archive.read_text(encoding="utf-8")
    for marker in ("Table I", "Fig. 7", "Fig. 12", "Throughput"):
        assert marker in archived


def test_design_md_lists_every_experiment_driver():
    text = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
    for module in (
        "table1", "fig6_startup", "fig7_update", "fig8_insdel",
        "fig9_vary_k", "fig10_hot", "fig11_scalability", "fig12_memory",
        "ablation", "throughput", "density_sweep", "csm_variants",
    ):
        assert module in text, f"DESIGN.md does not mention {module}"


def test_analysis_docs_cover_every_rule():
    """docs/ANALYSIS.md, README and API.md agree on the lint surface."""
    from repro.analysis import all_rules

    analysis_md = (ROOT / "docs" / "ANALYSIS.md").read_text(encoding="utf-8")
    for rule in all_rules():
        assert f"### {rule.code}" in analysis_md, (
            f"docs/ANALYSIS.md lost the section for {rule.code}"
        )
        assert rule.name in analysis_md

    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    assert "repro lint" in readme
    assert "docs/ANALYSIS.md" in readme

    api_md = (ROOT / "docs" / "API.md").read_text(encoding="utf-8")
    assert "repro lint" in api_md, "API.md command block lost `repro lint`"
    assert "`repro.analysis`" in api_md


def test_analysis_md_examples_reflect_the_rules():
    """The bad/good snippets in docs/ANALYSIS.md match linter behaviour."""
    import textwrap

    from repro.analysis import run_lint

    bad = textwrap.dedent(
        """\
        def collect(item, acc=[]):
            acc.append(item)
        """
    )
    good = textwrap.dedent(
        """\
        def collect(item, acc=None):
            if acc is None:
                acc = []
            acc.append(item)
        """
    )
    import tempfile
    from pathlib import Path as _Path

    with tempfile.TemporaryDirectory() as tmp:
        bad_path = _Path(tmp) / "bad.py"
        good_path = _Path(tmp) / "good.py"
        bad_path.write_text(bad, encoding="utf-8")
        good_path.write_text(good, encoding="utf-8")
        assert run_lint([str(bad_path)], select=["R005"]).for_rule("R005")
        assert not run_lint([str(good_path)], select=["R005"]).findings


def test_api_md_names_exist():
    """Spot-check that classes named in docs/API.md are importable."""
    import repro
    from repro import apps, baselines, batching, core, parallel, related
    from repro import service, workloads

    text = (ROOT / "docs" / "API.md").read_text(encoding="utf-8")
    for name, owner in (
        ("CpeEnumerator", repro),
        ("MultiPairMonitor", core),
        ("PairKey", core),
        ("snapshot_size_bytes", core.serialize),
        ("CsmStarEnumerator", baselines),
        ("CsmDcgEnumerator", baselines),
        ("RiskMonitor", apps),
        ("CycleMonitor", apps),
        ("k_shortest_simple_paths", related),
        ("run_dynamic", workloads),
        ("service_traffic", workloads),
        ("ShardedMonitor", parallel),
        ("WorkerPool", parallel),
        ("detect_groups", batching),
        ("SharedConstructionEngine", batching),
        ("GatherWindow", batching),
        ("PathQueryEngine", service),
        ("PathQueryServer", service),
        ("ServiceClient", service),
        ("IndexCache", service),
        ("AdmissionController", service),
    ):
        assert name in text
        assert hasattr(owner, name), f"{name} documented but not exported"
