"""The regression gate must catch an injected 2x slowdown."""

import copy
import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from benchmarks.check_regression import compare, load_result, main  # noqa: E402

BASE = {
    "schema": "repro-bench/1",
    "benchmark": "ci_bench",
    "config": {"seed": 7},
    "metrics": {
        "construction_s": {
            "value": 0.010, "unit": "seconds", "direction": "lower",
        },
        "enumeration_paths_per_s": {
            "value": 100000.0, "unit": "paths/s", "direction": "higher",
        },
        "update_throughput_per_s": {
            "value": 5000.0, "unit": "updates/s", "direction": "higher",
        },
    },
}


def _write(path, payload):
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


def test_identical_runs_pass():
    rows = compare(BASE, BASE)
    assert rows and all(not regressed for *_, regressed in rows)


def test_injected_2x_slowdown_fails_every_axis():
    slow = copy.deepcopy(BASE)
    slow["metrics"]["construction_s"]["value"] = 0.020  # 2x slower
    slow["metrics"]["enumeration_paths_per_s"]["value"] = 50000.0  # halved
    slow["metrics"]["update_throughput_per_s"]["value"] = 2500.0  # halved
    rows = compare(BASE, slow)
    verdicts = {name: regressed for name, *_, regressed in rows}
    assert verdicts == {
        "construction_s": True,
        "enumeration_paths_per_s": True,
        "update_throughput_per_s": True,
    }


def test_direction_aware_improvements_pass():
    fast = copy.deepcopy(BASE)
    fast["metrics"]["construction_s"]["value"] = 0.005  # 2x faster
    fast["metrics"]["enumeration_paths_per_s"]["value"] = 200000.0
    rows = compare(BASE, fast)
    assert all(not regressed for *_, regressed in rows)


def test_threshold_boundary():
    borderline = copy.deepcopy(BASE)
    borderline["metrics"]["construction_s"]["value"] = 0.0124  # +24%
    rows = compare(BASE, borderline, threshold=0.25)
    assert all(not regressed for *_, regressed in rows)
    over = copy.deepcopy(BASE)
    over["metrics"]["construction_s"]["value"] = 0.0126  # +26%
    rows = compare(BASE, over, threshold=0.25)
    assert any(regressed for name, *_, regressed in rows
               if name == "construction_s")


def test_metrics_missing_on_one_side_are_skipped():
    current = copy.deepcopy(BASE)
    del current["metrics"]["update_throughput_per_s"]
    current["metrics"]["new_metric"] = {
        "value": 1.0, "unit": "", "direction": "lower",
    }
    rows = compare(BASE, current)
    names = {name for name, *_ in rows}
    assert "update_throughput_per_s" not in names
    assert "new_metric" not in names


def test_main_exit_codes(tmp_path, capsys):
    baseline_path = _write(tmp_path / "baseline.json", BASE)
    ok_path = _write(tmp_path / "ok.json", BASE)
    assert main([ok_path, "--baseline", baseline_path]) == 0
    assert "OK" in capsys.readouterr().out

    slow = copy.deepcopy(BASE)
    slow["metrics"]["construction_s"]["value"] = 0.020
    slow_path = _write(tmp_path / "slow.json", slow)
    assert main([slow_path, "--baseline", baseline_path]) == 1
    captured = capsys.readouterr()
    assert "REGRESSED" in captured.out
    assert "re-baseline" in captured.err


def test_main_rejects_bad_schema(tmp_path, capsys):
    bad = {"schema": "wrong/9", "metrics": {"m": {"value": 1.0}}}
    bad_path = _write(tmp_path / "bad.json", bad)
    base_path = _write(tmp_path / "baseline.json", BASE)
    assert main([bad_path, "--baseline", base_path]) == 2


def test_load_result_validates(tmp_path):
    empty = {"schema": "repro-bench/1", "metrics": {}}
    path = tmp_path / "empty.json"
    path.write_text(json.dumps(empty), encoding="utf-8")
    with pytest.raises(ValueError):
        load_result(path)


def test_committed_baseline_is_valid():
    baseline = Path(__file__).resolve().parent.parent / "benchmarks" / "baseline.json"
    payload = load_result(baseline)
    assert {"construction_s", "enumeration_paths_per_s",
            "update_throughput_per_s"} <= set(payload["metrics"])
