"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graph.digraph import DynamicDiGraph


def make_random_graph(
    rng: random.Random, n_lo: int = 4, n_hi: int = 9, max_edges: int = 16
) -> DynamicDiGraph:
    """A small random digraph for differential tests."""
    n = rng.randint(n_lo, n_hi)
    graph = DynamicDiGraph(vertices=range(n))
    for _ in range(rng.randint(0, max_edges)):
        u, v = rng.sample(range(n), 2)
        graph.add_edge(u, v)
    return graph


def random_query(rng: random.Random, graph: DynamicDiGraph, k_hi: int = 6):
    """A random (s, t, k) triple with s != t."""
    s, t = rng.sample(list(graph.vertices()), 2)
    return s, t, rng.randint(1, k_hi)


@pytest.fixture
def diamond() -> DynamicDiGraph:
    """s=0 -> {1, 2} -> t=3, plus a direct 0->3 edge.

    k-st paths from 0 to 3 with k >= 2: (0,3), (0,1,3), (0,2,3).
    """
    return DynamicDiGraph([(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)])


@pytest.fixture
def two_hop_chain() -> DynamicDiGraph:
    """A 6-vertex chain 0 -> 1 -> ... -> 5."""
    return DynamicDiGraph([(i, i + 1) for i in range(5)])


@pytest.fixture
def paper_figure2() -> DynamicDiGraph:
    """A graph in the spirit of the paper's Fig. 2 example.

    s=0, t=9, with several 2+2 partial path combinations meeting in the
    middle and one pruned branch (a vertex too far from t).
    """
    return DynamicDiGraph(
        [
            (0, 1), (0, 2), (1, 3), (2, 3), (2, 4),
            (3, 5), (4, 5), (3, 6), (5, 9), (6, 9),
            (1, 7), (7, 8),  # dead-end branch: 8 cannot reach 9
        ]
    )
