"""Tests for index maintenance under edge insertion (Algorithms 3-4)."""

import random

import pytest

from repro.baselines.bruteforce import path_set
from repro.core.construction import build_index
from repro.core.enumerator import CpeEnumerator
from repro.graph.digraph import DynamicDiGraph
from tests.conftest import make_random_graph, random_query


def assert_index_matches_fresh(cpe: CpeEnumerator) -> None:
    """The maintained index must equal a fresh build with the same plan."""
    fresh = build_index(cpe.graph, cpe.s, cpe.t, cpe.k, forced_plan=cpe.plan)
    assert cpe.index.left.as_dict() == fresh.index.left.as_dict()
    assert cpe.index.right.as_dict() == fresh.index.right.as_dict()
    assert cpe.index.direct_edge == fresh.index.direct_edge


class TestSimpleScenarios:
    def test_insert_creates_new_path(self):
        g = DynamicDiGraph([(0, 1), (2, 3)])
        cpe = CpeEnumerator(g, 0, 3, 3)
        assert cpe.startup() == []
        result = cpe.insert_edge(1, 2)
        assert set(result.paths) == {(0, 1, 2, 3)}
        assert_index_matches_fresh(cpe)

    def test_insert_direct_edge(self):
        g = DynamicDiGraph([(0, 1), (1, 2)])
        cpe = CpeEnumerator(g, 0, 2, 3)
        result = cpe.insert_edge(0, 2)
        assert (0, 2) in result.paths
        assert cpe.index.direct_edge is True

    def test_insert_existing_edge_noop(self):
        g = DynamicDiGraph([(0, 1), (1, 2)])
        cpe = CpeEnumerator(g, 0, 2, 3)
        result = cpe.insert_edge(0, 1)
        assert result.changed is False
        assert result.paths == []

    def test_insert_self_loop_no_paths(self):
        g = DynamicDiGraph([(0, 1), (1, 2)])
        cpe = CpeEnumerator(g, 0, 2, 3)
        result = cpe.insert_edge(1, 1)
        assert result.changed is True
        assert result.paths == []
        assert_index_matches_fresh(cpe)

    @pytest.mark.parametrize("loop_at", [0, 2])
    def test_self_loop_at_terminal(self, loop_at):
        # regression: a self-loop at s used to create the bogus LP base
        # (s, s); at t, the bogus RP base (t, t)
        g = DynamicDiGraph([(0, 1), (1, 2)])
        cpe = CpeEnumerator(g, 0, 2, 4)
        result = cpe.insert_edge(loop_at, loop_at)
        assert result.paths == []
        for path in list(cpe.index.left.paths()) + list(cpe.index.right.paths()):
            assert len(set(path)) == len(path), f"non-simple {path}"
        assert_index_matches_fresh(cpe)
        result = cpe.delete_edge(loop_at, loop_at)
        assert result.paths == []
        assert_index_matches_fresh(cpe)

    def test_insert_edge_with_new_vertices(self):
        g = DynamicDiGraph([(0, 1)])
        cpe = CpeEnumerator(g, 0, 3, 4)
        cpe.insert_edge(1, 2)
        result = cpe.insert_edge(2, 3)
        assert set(result.paths) == {(0, 1, 2, 3)}

    def test_insert_irrelevant_edge_reports_no_paths(self):
        g = DynamicDiGraph([(0, 1), (1, 2)], vertices=[7, 8])
        cpe = CpeEnumerator(g, 0, 2, 2)
        result = cpe.insert_edge(7, 8)
        assert result.paths == []
        assert_index_matches_fresh(cpe)


class TestRelaxationEffects:
    def test_shortcut_admits_previously_pruned_partials(self):
        # A long chain to t means early partial paths were inadmissible;
        # inserting a shortcut relaxes Dist_t and the repaired index must
        # pick up the previously pruned partial paths.
        g = DynamicDiGraph(
            [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]
        )
        cpe = CpeEnumerator(g, 0, 6, 4)
        assert cpe.startup() == []
        result = cpe.insert_edge(2, 6)
        assert set(result.paths) == {(0, 1, 2, 6)}
        assert_index_matches_fresh(cpe)

    def test_relaxation_repair_without_new_full_paths(self):
        # the inserted edge relaxes distances but creates no st-path;
        # the index must still gain the newly admissible partials
        g = DynamicDiGraph([(0, 1), (1, 2), (9, 2), (9, 0)])
        cpe = CpeEnumerator(g, 0, 2, 4)
        before = cpe.startup()
        result = cpe.insert_edge(2, 9)
        assert set(before) == {(0, 1, 2)}
        assert_index_matches_fresh(cpe)
        assert set(cpe.startup()) == path_set(cpe.graph, 0, 2, 4)
        assert len(result.paths) == len(
            path_set(cpe.graph, 0, 2, 4) - set(before)
        )

    def test_pre_existing_path_extended_by_newly_relaxed_vertex(self):
        """The UDFS counterexample (DESIGN.md §3).

        After the insertion, vertex ``x`` is relaxed but already holds an
        admissible RP path; a second relaxed vertex ``w`` one hop behind
        it becomes admissible for the *extension* of that pre-existing
        path.  The paper's strict pseudocode (extend only newly-added
        paths) would miss it; the repair DFS must find it.
        """
        k = 8
        edges = [
            # long detours setting the original distances
            (0, 10), (10, 11), (11, 12), (12, 13), (13, 14), (14, 1),  # s ~> w far
            (1, 2),                        # w -> x
            (2, 3), (3, 4), (4, 5), (5, 9),  # x -> ... -> t (4 hops)
            (0, 20), (20, 21), (21, 22), (22, 2),  # s ~> x in 4 hops
        ]
        g = DynamicDiGraph(edges)
        cpe = CpeEnumerator(g, 0, 9, k)
        cpe.startup()
        # shortcut: s -> 30 -> 1 relaxes w(=1) from 6 to 2 and x stays
        # reachable both ways
        cpe.insert_edge(0, 30)
        result = cpe.insert_edge(30, 1)
        assert_index_matches_fresh(cpe)
        assert set(cpe.startup()) == path_set(cpe.graph, 0, 9, k)
        assert (0, 30, 1, 2, 3, 4, 5, 9) in set(result.paths)


class TestRandomizedInsertions:
    def test_streams_match_bruteforce_and_invariant(self):
        rng = random.Random(77)
        for _ in range(50):
            g = make_random_graph(rng, max_edges=10)
            s, t, k = random_query(rng, g)
            cpe = CpeEnumerator(g, s, t, k)
            current = path_set(g, s, t, k)
            for _ in range(8):
                u, v = rng.sample(list(g.vertices()), 2)
                if g.has_edge(u, v):
                    continue
                result = cpe.insert_edge(u, v)
                fresh = path_set(g, s, t, k)
                assert set(result.paths) == fresh - current
                assert len(result.paths) == len(set(result.paths))
                current = fresh
            assert_index_matches_fresh(cpe)

    def test_update_record_counts(self):
        g = DynamicDiGraph([(0, 1), (2, 3)])
        cpe = CpeEnumerator(g, 0, 3, 3)
        result = cpe.insert_edge(1, 2)
        assert result.record is not None
        assert result.record.insert is True
        assert result.record.delta_partial_paths > 0
