"""Unit tests for graph statistics (Table I machinery)."""

import pytest

from repro.graph import stats
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import grid_graph


def chain(n):
    return DynamicDiGraph([(i, i + 1) for i in range(n - 1)])


class TestAverageDegree:
    def test_simple(self):
        g = DynamicDiGraph([(0, 1), (1, 2)])
        assert stats.average_degree(g) == pytest.approx(2 * 2 / 3)

    def test_empty(self):
        assert stats.average_degree(DynamicDiGraph()) == 0.0


class TestEccentricity:
    def test_chain_distances_are_undirected(self):
        g = chain(5)
        distances = stats.undirected_bfs_eccentricity(g, 4)
        # direction is ignored, so vertex 4 reaches everything
        assert max(distances) == 4
        assert len(distances) == 5

    def test_disconnected_component_not_reached(self):
        g = DynamicDiGraph([(0, 1)], vertices=[9])
        distances = stats.undirected_bfs_eccentricity(g, 0)
        assert len(distances) == 2


class TestDiameterEstimate:
    def test_chain_exact(self):
        result = stats.diameter_estimate(chain(10))
        assert result.diameter == 9
        assert result.num_vertices == 10
        assert result.num_edges == 9

    def test_grid(self):
        result = stats.diameter_estimate(grid_graph(4, 4))
        assert result.diameter == 6  # undirected Manhattan diameter

    def test_sampled_is_lower_bound(self):
        g = chain(200)
        sampled = stats.diameter_estimate(g, sample_size=8, seed=1)
        assert sampled.diameter <= 199
        assert sampled.diameter > 0

    def test_empty_graph(self):
        result = stats.diameter_estimate(DynamicDiGraph())
        assert result.diameter == 0
        assert result.effective_diameter_90 == 0.0

    def test_effective_diameter_bounded_by_diameter(self):
        result = stats.diameter_estimate(chain(20))
        assert result.effective_diameter_90 <= result.diameter

    def test_as_row_keys(self):
        row = stats.diameter_estimate(chain(3)).as_row()
        assert set(row) == {"|V|", "|E|", "d_avg", "D", "D90"}


class TestDegreePercentile:
    def test_top_fraction(self):
        g = DynamicDiGraph([(0, 1), (0, 2), (0, 3), (1, 2)])
        top = stats.degree_percentile_vertices(g, 0.25)
        assert top == [0]

    def test_full_fraction_returns_everything(self):
        g = DynamicDiGraph([(0, 1)])
        assert set(stats.degree_percentile_vertices(g, 1.0)) == {0, 1}

    def test_at_least_one_vertex(self):
        g = DynamicDiGraph([(0, 1)])
        assert len(stats.degree_percentile_vertices(g, 0.001)) == 1

    def test_invalid_fraction(self):
        g = DynamicDiGraph([(0, 1)])
        with pytest.raises(ValueError):
            stats.degree_percentile_vertices(g, 0.0)
        with pytest.raises(ValueError):
            stats.degree_percentile_vertices(g, 1.5)


def test_percentile_interpolation():
    assert stats._percentile([0, 10], 0.5) == pytest.approx(5.0)
    assert stats._percentile([1, 2, 3, 4], 0.9) == pytest.approx(3.7)
    assert stats._percentile([7], 0.9) == 7.0
    assert stats._percentile([], 0.9) == 0.0
