"""Baseline ratchet, SARIF output, and golden (stable) reports.

The baseline freezes pre-existing findings by fingerprint — rule code,
repo-relative path, stripped line content — so CI fails only on *new*
findings while the frozen set ratchets downward.  The SARIF document
is what CI uploads to GitHub code scanning.  Both, plus the text/JSON
reporters under ``REPRO_LINT_STABLE=1``, must be byte-deterministic.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import render_json, render_text, run_lint
from repro.analysis.baseline import (
    SCHEMA,
    BaselineError,
    apply_baseline,
    fingerprint_counts,
    load_baseline,
    render_baseline,
    write_baseline,
)
from repro.analysis.reporters import SARIF_VERSION, render_sarif

ROOT = Path(__file__).parent.parent

_BAD = textwrap.dedent(
    """\
    def collect(item, acc=[]):
        acc.append(item)
        return acc
    """
)

_BAD_TWICE = _BAD + "\n\n" + textwrap.dedent(
    """\
    def gather(item, acc=[]):
        acc.append(item)
        return acc
    """
)


def _lint_file(tmp_path, source, name="mod.py"):
    target = tmp_path / name
    target.write_text(source, encoding="utf-8")
    return run_lint([str(target)], select=["R005"]), target


# ----------------------------------------------------------------------
# Baseline mechanics
# ----------------------------------------------------------------------
def test_baseline_round_trip_freezes_everything(tmp_path):
    report, _ = _lint_file(tmp_path, _BAD)
    assert report.findings
    path = tmp_path / "baseline.json"
    write_baseline(path, report.findings, tmp_path)
    result = apply_baseline(
        report.findings, load_baseline(path), tmp_path
    )
    assert result.ok
    assert result.new == () and len(result.frozen) == len(report.findings)
    assert result.stale == ()


def test_baseline_lets_new_findings_through(tmp_path):
    report, target = _lint_file(tmp_path, _BAD)
    path = tmp_path / "baseline.json"
    write_baseline(path, report.findings, tmp_path)

    target.write_text(_BAD_TWICE, encoding="utf-8")
    grown = run_lint([str(target)], select=["R005"])
    result = apply_baseline(grown.findings, load_baseline(path), tmp_path)
    assert len(result.frozen) == 1
    assert len(result.new) == 1
    assert "gather" in result.new[0].render() or result.new[0].line > 1


def test_baseline_survives_line_renumbering(tmp_path):
    report, target = _lint_file(tmp_path, _BAD)
    path = tmp_path / "baseline.json"
    write_baseline(path, report.findings, tmp_path)

    # an unrelated edit above the finding must not un-freeze it
    target.write_text("import os  # noqa\n\n\n" + _BAD, encoding="utf-8")
    moved = run_lint([str(target)], select=["R005"])
    assert moved.findings[0].line != report.findings[0].line
    result = apply_baseline(moved.findings, load_baseline(path), tmp_path)
    assert result.new == () and len(result.frozen) == 1


def test_baseline_counts_identical_lines(tmp_path):
    # two byte-identical violating lines -> one fingerprint, count 2
    source = _BAD + "\n\n" + _BAD  # same text twice: same fingerprint
    report, target = _lint_file(tmp_path, source)
    counts = fingerprint_counts(report.findings, tmp_path)
    assert list(counts.values()) == [2]

    path = tmp_path / "baseline.json"
    write_baseline(path, report.findings, tmp_path)
    # a third identical copy exceeds the frozen count and is new
    target.write_text(source + "\n\n" + _BAD, encoding="utf-8")
    grown = run_lint([str(target)], select=["R005"])
    result = apply_baseline(grown.findings, load_baseline(path), tmp_path)
    assert len(result.frozen) == 2 and len(result.new) == 1


def test_baseline_reports_stale_entries(tmp_path):
    report, target = _lint_file(tmp_path, _BAD)
    path = tmp_path / "baseline.json"
    write_baseline(path, report.findings, tmp_path)

    target.write_text("def collect(item, acc=None):\n    return acc\n",
                      encoding="utf-8")
    fixed = run_lint([str(target)], select=["R005"])
    result = apply_baseline(fixed.findings, load_baseline(path), tmp_path)
    assert result.new == () and result.frozen == ()
    assert len(result.stale) == 1 and result.stale[0].startswith("R005::")


def test_baseline_rejects_bad_files(tmp_path):
    target = tmp_path / "baseline.json"
    target.write_text("not json", encoding="utf-8")
    with pytest.raises(BaselineError):
        load_baseline(target)
    target.write_text(json.dumps({"schema": "other/1", "entries": {}}),
                      encoding="utf-8")
    with pytest.raises(BaselineError):
        load_baseline(target)
    with pytest.raises(BaselineError):
        load_baseline(tmp_path / "missing.json")


def test_baseline_document_shape(tmp_path):
    report, _ = _lint_file(tmp_path, _BAD)
    document = json.loads(render_baseline(report.findings, tmp_path))
    assert document["schema"] == SCHEMA
    (key,) = document["entries"]
    rule, rel, content = key.split("::", 2)
    assert rule == "R005"
    assert rel == "mod.py" and "/" not in rel
    assert content == "def collect(item, acc=[]):"


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------
def test_sarif_document_structure(tmp_path):
    report, _ = _lint_file(tmp_path, _BAD)
    payload = json.loads(render_sarif(report, root=tmp_path))
    assert payload["version"] == SARIF_VERSION
    assert payload["$schema"].endswith("sarif-2.1.0.json")
    (run,) = payload["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert "R005" in rule_ids and "W001" in rule_ids and "R012" in rule_ids
    (result,) = run["results"]
    assert result["ruleId"] == "R005"
    assert result["level"] == "warning"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "mod.py"
    assert location["region"]["startLine"] == 1
    assert location["region"]["startColumn"] >= 1
    assert "suppressions" not in result


def test_sarif_marks_baseline_frozen_findings_suppressed(tmp_path):
    import dataclasses

    report, _ = _lint_file(tmp_path, _BAD)
    path = tmp_path / "baseline.json"
    write_baseline(path, report.findings, tmp_path)
    result = apply_baseline(
        report.findings, load_baseline(path), tmp_path
    )
    emptied = dataclasses.replace(report, findings=result.new)
    payload = json.loads(
        render_sarif(emptied, frozen=result.frozen, root=tmp_path)
    )
    (run,) = payload["runs"]
    (suppressed,) = run["results"]
    assert suppressed["suppressions"][0]["kind"] == "external"


def test_sarif_levels(tmp_path):
    (tmp_path / "broken.py").write_text("def broken(:\n", encoding="utf-8")
    report = run_lint([str(tmp_path / "broken.py")])
    payload = json.loads(render_sarif(report, root=tmp_path))
    (result,) = payload["runs"][0]["results"]
    assert result["ruleId"] == "E001" and result["level"] == "error"


# ----------------------------------------------------------------------
# Golden (stable) output
# ----------------------------------------------------------------------
def test_stable_text_output_is_deterministic(tmp_path):
    report, target = _lint_file(tmp_path, _BAD)
    expected = (
        f"{target}:1:22: R005 mutable default argument (list literal) "
        "in 'collect'; default to None and create inside the function\n"
        "1 finding (1 files scanned)"
    )
    assert render_text(report, timings=False) == expected


def test_stable_json_zeroes_elapsed(tmp_path):
    report, _ = _lint_file(tmp_path, _BAD)
    payload = json.loads(render_json(report, timings=False))
    assert payload["elapsed_seconds"] == 0.0
    timed = json.loads(render_json(report, timings=True))
    assert timed["elapsed_seconds"] > 0.0


def test_sarif_output_is_byte_stable(tmp_path):
    report, _ = _lint_file(tmp_path, _BAD)
    first = render_sarif(report, root=tmp_path)
    second = render_sarif(report, root=tmp_path)
    assert first == second
    assert "elapsed" not in first


# ----------------------------------------------------------------------
# CLI: stable env, baseline flags, error handling
# ----------------------------------------------------------------------
def test_cli_stable_env_hides_timings(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    target = tmp_path / "clean.py"
    target.write_text("X = 1\n\n__all__ = []\n", encoding="utf-8")
    monkeypatch.setenv("REPRO_LINT_STABLE", "1")
    assert main(["lint", str(target)]) == 0
    out = capsys.readouterr().out
    assert out == "0 findings (1 files scanned)\n"

    assert main(["lint", "--timings", str(target)]) == 0
    out = capsys.readouterr().out
    assert "scanned, " in out and out.rstrip().endswith("s)")


def test_cli_select_bogus_is_a_clean_error(tmp_path, capsys):
    """Regression: an unknown --select code must not raise a traceback."""
    from repro.cli import main

    target = tmp_path / "mod.py"
    target.write_text("X = 1\n", encoding="utf-8")
    code = main(["lint", "--select", "BOGUS", str(target)])
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown rule 'BOGUS'" in captured.err
    assert "known rules: R001" in captured.err
    assert "Traceback" not in captured.err + captured.out


def test_cli_baseline_flow(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    (tmp_path / "pyproject.toml").write_text("[project]\n", encoding="utf-8")
    target = tmp_path / "mod.py"
    target.write_text(_BAD, encoding="utf-8")

    # 1) without a baseline the finding fails the run
    assert main(["lint", "--select", "R005", str(target)]) == 1
    capsys.readouterr()

    # 2) freeze it
    assert main(["lint", "--select", "R005", "--update-baseline",
                 str(target)]) == 0
    out = capsys.readouterr().out
    assert "baseline analysis-baseline.json updated" in out
    assert (tmp_path / "analysis-baseline.json").exists()

    # 3) frozen -> green
    assert main(["lint", "--select", "R005",
                 "--baseline", "analysis-baseline.json", str(target)]) == 0
    out = capsys.readouterr().out
    assert "frozen by the baseline" in out

    # 4) a new finding still fails
    target.write_text(_BAD_TWICE, encoding="utf-8")
    assert main(["lint", "--select", "R005",
                 "--baseline", "analysis-baseline.json", str(target)]) == 1
    capsys.readouterr()

    # 5) fixing everything reports the stale entries
    target.write_text("X = 1\n", encoding="utf-8")
    assert main(["lint", "--select", "R005",
                 "--baseline", "analysis-baseline.json", str(target)]) == 0
    captured = capsys.readouterr()
    assert "stale baseline entry" in captured.err


def test_cli_sarif_format(tmp_path, capsys):
    from repro.cli import main

    target = tmp_path / "mod.py"
    target.write_text(_BAD, encoding="utf-8")
    assert main(["lint", "--format", "sarif", "--select", "R005",
                 str(target)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == SARIF_VERSION
    assert payload["runs"][0]["results"][0]["ruleId"] == "R005"


def test_cli_no_unused_noqa(tmp_path, capsys):
    from repro.cli import main

    target = tmp_path / "mod.py"
    target.write_text(
        'VALUE = 1  # repro: noqa[R005]\n\n__all__ = ["VALUE"]\n',
        encoding="utf-8",
    )
    assert main(["lint", str(target)]) == 1
    assert main(["lint", "--no-unused-noqa", str(target)]) == 0
    capsys.readouterr()


def test_shipped_baseline_is_valid_and_minimal():
    baseline = load_baseline(ROOT / "analysis-baseline.json")
    assert baseline, "shipped baseline should exercise the ratchet"
    for key, count in baseline.items():
        rule, rel, content = key.split("::", 2)
        assert rule.startswith(("R", "W"))
        assert (ROOT / rel).is_file(), f"baseline names missing file {rel}"
        assert count >= 1 and content
