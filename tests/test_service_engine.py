"""Tests for the serving core (no sockets involved)."""

import random

import pytest

from repro.baselines.bruteforce import path_set
from repro.core.enumerator import CpeEnumerator
from repro.graph.digraph import DynamicDiGraph, EdgeUpdate
from repro.service.engine import PathQueryEngine
from repro.service.protocol import (
    AlreadyWatchedError,
    BadRequestError,
    InternalError,
    NotFoundError,
    decode_paths,
)
from tests.conftest import make_random_graph, random_query


def diamond_engine(**kwargs):
    graph = DynamicDiGraph([(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)])
    return PathQueryEngine(graph, default_k=3, **kwargs)


class TestQuery:
    def test_query_equals_direct_enumerator(self):
        engine = diamond_engine()
        result = engine.op_query(s=0, t=3, k=3)
        direct = CpeEnumerator(engine.graph, 0, 3, 3).startup()
        assert set(decode_paths(result["paths"])) == set(direct)
        assert result["count"] == len(direct)
        assert result["source"] == "miss"

    def test_repeated_query_hits_cache(self):
        engine = diamond_engine()
        engine.op_query(s=0, t=3, k=3)
        assert engine.op_query(s=0, t=3, k=3)["source"] == "hit"
        assert engine.cache.stats().hits == 1

    def test_query_on_watched_pair_uses_monitor_index(self):
        engine = diamond_engine()
        engine.op_watch(s=0, t=3)
        result = engine.op_query(s=0, t=3, k=3)
        assert result["source"] == "watched"
        assert len(engine.cache) == 0

    def test_watched_pair_with_other_k_goes_to_cache(self):
        engine = diamond_engine()
        engine.op_watch(s=0, t=3)          # k = default_k = 3
        result = engine.op_query(s=0, t=3, k=2)
        assert result["source"] == "miss"

    def test_invalid_query_is_bad_request(self):
        engine = diamond_engine()
        with pytest.raises(BadRequestError):
            engine.op_query(s=0, t=0, k=3)


class TestWatch:
    def test_watch_returns_initial_paths(self):
        engine = diamond_engine()
        result = engine.op_watch(s=0, t=3)
        assert set(decode_paths(result["paths"])) == path_set(
            engine.graph, 0, 3, 3
        )

    def test_double_watch_is_structured_error(self):
        engine = diamond_engine()
        engine.op_watch(s=0, t=3)
        with pytest.raises(AlreadyWatchedError):
            engine.op_watch(s=0, t=3)

    def test_watch_rejects_s_equals_t(self):
        engine = diamond_engine()
        with pytest.raises(BadRequestError):
            engine.op_watch(s=1, t=1)

    def test_unwatch(self):
        engine = diamond_engine()
        engine.op_watch(s=0, t=3)
        assert engine.op_unwatch(s=0, t=3) == {"removed": True}
        with pytest.raises(NotFoundError):
            engine.op_unwatch(s=0, t=3)


class TestUpdate:
    def test_update_reports_watched_deltas(self):
        engine = diamond_engine()
        engine.op_watch(s=0, t=3)
        result = engine.op_update(u=1, v=2, insert=True)
        assert result["changed"]
        (pair,) = result["pairs"]
        assert (pair["s"], pair["t"]) == (0, 3)
        assert decode_paths(pair["paths"]) == [(0, 1, 2, 3)]

    def test_noop_update_changes_nothing(self):
        engine = diamond_engine()
        engine.op_watch(s=0, t=3)
        result = engine.op_update(u=0, v=1, insert=True)  # already present
        assert result == {"changed": False, "pairs": []}
        assert engine.op_stats()["updates"]["noop"] == 1

    def test_update_repairs_cached_queries(self):
        engine = diamond_engine()
        engine.op_query(s=0, t=3, k=3)                # warm the cache
        engine.op_update(u=0, v=1, insert=False)
        result = engine.op_query(s=0, t=3, k=3)
        assert result["source"] == "hit"
        assert set(decode_paths(result["paths"])) == path_set(
            engine.graph, 0, 3, 3
        )

    def test_batch_update_cancels_churn(self):
        engine = diamond_engine()
        engine.op_watch(s=0, t=3)
        result = engine.op_batch_update(
            updates=[(1, 2, True), (1, 2, False), (3, 0, True)]
        )
        assert result["received"] == 3
        assert result["applied"] == 1
        assert result["cancelled"] == 2
        assert result["pairs"] == []   # net path delta for (0, 3) is empty

    def test_batch_update_net_delta_matches_bruteforce(self):
        rng = random.Random(23)
        for _ in range(15):
            graph = make_random_graph(rng, max_edges=12)
            s, t, k = random_query(rng, graph)
            engine = PathQueryEngine(graph, default_k=k)
            try:
                engine.op_watch(s=s, t=t)
            except BadRequestError:
                continue
            before = path_set(graph, s, t, k)
            scratch = graph.copy()
            triples = []
            for _ in range(10):
                u, v = rng.sample(list(graph.vertices()), 2)
                insert = not scratch.has_edge(u, v)
                scratch.apply_update(EdgeUpdate(u, v, insert))
                triples.append((u, v, insert))
            result = engine.op_batch_update(updates=triples)
            after = path_set(graph, s, t, k)
            new, deleted = set(), set()
            for pair in result["pairs"]:
                if (pair["s"], pair["t"]) == (s, t):
                    new = set(decode_paths(pair["new_paths"]))
                    deleted = set(decode_paths(pair["deleted_paths"]))
            assert new == after - before
            assert deleted == before - after


class TestDispatchAndStats:
    def test_handle_routes_and_counts(self):
        engine = diamond_engine()
        engine.handle("query", {"s": 0, "t": 3, "k": 3})
        engine.handle("stats", {})
        stats = engine.op_stats()
        assert stats["served"]["query"] == 1
        assert stats["served"]["stats"] == 1
        assert stats["graph"]["vertices"] == 4

    def test_handle_unknown_op_is_internal_error(self):
        with pytest.raises(InternalError):
            diamond_engine().handle("nonsense", {})

    def test_stats_are_json_serializable(self):
        import json

        engine = diamond_engine()
        engine.op_query(s=0, t=3, k=3)
        json.dumps(engine.op_stats())


class TestMetricsOp:
    def test_metrics_json_reports_enabled_state_and_snapshot(self):
        import json

        from repro import obs

        previous = obs.set_enabled(True)
        obs.reset()
        try:
            engine = diamond_engine()
            engine.handle("query", {"s": 0, "t": 3, "k": 3})
            result = engine.handle("metrics", {})
            assert result["format"] == "json"
            assert result["enabled"] is True
            counters = result["metrics"]["counters"]
            assert counters["service.requests.query"] == 1
            assert "service.op.query.seconds" in result["metrics"]["histograms"]
            json.dumps(result)
        finally:
            obs.set_enabled(previous)
            obs.reset()

    def test_metrics_prometheus_returns_exposition_text(self):
        from repro import obs

        previous = obs.set_enabled(True)
        obs.reset()
        try:
            engine = diamond_engine()
            engine.handle("query", {"s": 0, "t": 3, "k": 3})
            result = engine.handle("metrics", {"format": "prometheus"})
            assert result["format"] == "prometheus"
            assert "service_requests_query 1" in result["text"]
        finally:
            obs.set_enabled(previous)
            obs.reset()

    def test_metrics_disabled_mode_reports_disabled(self):
        from repro import obs

        previous = obs.set_enabled(False)
        obs.reset()
        try:
            result = diamond_engine().op_metrics()
            assert result["enabled"] is False
            assert result["metrics"]["counters"] == {}
        finally:
            obs.set_enabled(previous)

    def test_metrics_bad_format_rejected(self):
        with pytest.raises(BadRequestError):
            diamond_engine().op_metrics(format="xml")


class TestLongInterleavings:
    def test_served_state_tracks_direct_enumeration(self):
        """Random query/watch/update interleavings stay exact."""
        rng = random.Random(77)
        for _ in range(8):
            graph = make_random_graph(rng, max_edges=14)
            engine = PathQueryEngine(graph, default_k=4)
            vertices = list(graph.vertices())
            for _ in range(25):
                action = rng.random()
                u, v = rng.sample(vertices, 2)
                if action < 0.3:
                    engine.op_update(u=u, v=v, insert=not graph.has_edge(u, v))
                elif action < 0.45:
                    try:
                        engine.op_watch(s=u, t=v)
                    except AlreadyWatchedError:
                        pass
                else:
                    k = rng.randint(1, 4)
                    result = engine.op_query(s=u, t=v, k=k)
                    expected = path_set(graph, u, v, k)
                    assert set(decode_paths(result["paths"])) == expected, (
                        f"divergence for q({u}, {v}, {k}) "
                        f"via {result['source']}"
                    )
