"""Longer randomized stress runs (still seconds, not minutes).

These push the maintained structures through thousands of updates on
mid-size graphs — larger state than the unit tests, catching drift that
only accumulates (counter leaks, bucket residue, stale direct-edge
flags).
"""

import random

from repro.baselines.bruteforce import path_set
from repro.core.enumerator import CpeEnumerator
from repro.core.verify import verify_enumerator
from repro.graph.generators import (
    community_graph,
    gnm_random_graph,
    preferential_attachment_graph,
)


def churn(cpe, rng, steps):
    vertices = list(cpe.graph.vertices())
    total_delta = 0
    for _ in range(steps):
        u, v = rng.sample(vertices, 2)
        if cpe.graph.has_edge(u, v):
            total_delta -= len(cpe.delete_edge(u, v).paths)
        else:
            total_delta += len(cpe.insert_edge(u, v).paths)
    return total_delta


def test_long_stream_on_random_graph():
    rng = random.Random(71)
    graph = gnm_random_graph(120, 360, seed=72)
    cpe = CpeEnumerator(graph, 0, 77, 5)
    initial = len(cpe.startup())
    delta = churn(cpe, rng, 1500)
    assert initial + delta == len(cpe.startup())
    assert verify_enumerator(cpe) == []


def test_long_stream_on_power_law_graph():
    rng = random.Random(73)
    graph = preferential_attachment_graph(200, 2, seed=74)
    hubs = sorted(graph.vertices(), key=graph.degree, reverse=True)
    cpe = CpeEnumerator(graph, hubs[0], hubs[3], 4)
    initial = len(cpe.startup())
    delta = churn(cpe, rng, 1200)
    final = set(cpe.startup())
    assert initial + delta == len(final)
    assert final == path_set(graph, hubs[0], hubs[3], 4)
    assert verify_enumerator(cpe) == []


def test_long_stream_on_community_graph():
    rng = random.Random(75)
    graph = community_graph(5, 20, 0.15, 60, seed=76)
    cpe = CpeEnumerator(graph, 0, 99, 5)
    churn(cpe, rng, 1000)
    assert verify_enumerator(cpe) == []
    # distance maps stayed exact through the whole run
    assert cpe._dist_s.is_consistent()
    assert cpe._dist_t.is_consistent()


def test_heavy_delete_phase_then_rebuild_phase():
    """Tear most of the graph down, then rebuild it: both directions of
    maintenance exercised at scale, ending equal to a fresh start."""
    rng = random.Random(77)
    graph = gnm_random_graph(80, 320, seed=78)
    cpe = CpeEnumerator(graph, 1, 42, 5)
    cpe.startup()
    edges = list(graph.edges())
    rng.shuffle(edges)
    removed = edges[: len(edges) * 3 // 4]
    for u, v in removed:
        cpe.delete_edge(u, v)
    assert verify_enumerator(cpe) == []
    for u, v in removed:
        cpe.insert_edge(u, v)
    assert verify_enumerator(cpe) == []
    fresh = CpeEnumerator(graph.copy(), 1, 42, 5)
    assert set(cpe.startup()) == set(fresh.startup())
