"""Service-layer event-log wiring and span correctness under concurrency.

Covers the tentpole's correlation contract — a request's ``corr_id``
(client-supplied or server-minted) stamps every event that request
causes across admission, the engine worker thread, and the cache — and
the span tree: with the asyncio server interleaving requests from
several client threads, per-thread span intervals must still nest
cleanly (a child span never partially overlaps its parent).
"""

import threading

import pytest

from repro import obs
from repro.obs import events
from repro.obs.trace import TraceBuffer
from repro.graph.digraph import DynamicDiGraph
from repro.service.client import ServiceClient
from repro.service.engine import PathQueryEngine
from repro.service.server import serve_in_thread


@pytest.fixture
def event_server(diamond):
    previous = events.set_enabled(True)
    events.reset()
    engine = PathQueryEngine(diamond, default_k=3)
    handle = serve_in_thread(engine)
    try:
        yield handle
    finally:
        handle.stop()
        events.set_enabled(previous)
        events.reset()


def _events_of_kind(payload, kind):
    return [e for e in payload["events"] if e["kind"] == kind]


class TestServiceEvents:
    def test_client_corr_id_stamps_the_whole_request(self, event_server):
        with ServiceClient(event_server.host, event_server.port) as client:
            client.call("query", corr_id="mine-001", s=0, t=3, k=3)
            payload = client.events(limit=100)
        for kind in (events.QUERY_ADMITTED, events.QUERY_STARTED,
                     events.CACHE_MISS, events.QUERY_FINISHED):
            matching = [e for e in _events_of_kind(payload, kind)
                        if e.get("corr_id") == "mine-001"]
            assert matching, f"no {kind} event with the client corr_id"

    def test_minted_corr_ids_differ_per_request(self, event_server):
        with ServiceClient(event_server.host, event_server.port) as client:
            client.query(0, 3, 3)
            client.query(0, 3, 2)
            payload = client.events(limit=100)
        started = _events_of_kind(payload, events.QUERY_STARTED)
        query_corrs = [e["corr_id"] for e in started
                       if e.get("op") == "query"]
        assert len(query_corrs) == 2
        assert query_corrs[0] != query_corrs[1]

    def test_cache_hit_and_miss_share_the_query_corr(self, event_server):
        with ServiceClient(event_server.host, event_server.port) as client:
            client.query(0, 3, 3)
            client.query(0, 3, 3)
            payload = client.events(limit=100)
        misses = _events_of_kind(payload, events.CACHE_MISS)
        hits = _events_of_kind(payload, events.CACHE_HIT)
        assert len(misses) == 1 and len(hits) == 1
        started = {e["corr_id"]: e for e in
                   _events_of_kind(payload, events.QUERY_STARTED)
                   if e.get("op") == "query"}
        assert misses[0]["corr_id"] in started
        assert hits[0]["corr_id"] in started
        assert misses[0]["corr_id"] != hits[0]["corr_id"]

    def test_update_applied_event(self, event_server):
        with ServiceClient(event_server.host, event_server.port) as client:
            client.insert_edge(1, 2)
            payload = client.events(limit=100)
        applied = _events_of_kind(payload, events.UPDATE_APPLIED)
        assert applied and applied[0]["u"] == 1 and applied[0]["v"] == 2
        assert applied[0]["insert"] is True

    def test_zero_deadline_emits_deadline_event(self, event_server):
        with ServiceClient(event_server.host, event_server.port) as client:
            response = client.request("query", deadline_ms=0, s=0, t=3, k=3)
            assert response.error is not None
            payload = client.events(limit=100)
        exceeded = _events_of_kind(payload, events.DEADLINE_EXCEEDED)
        assert exceeded and exceeded[0]["where"] == "pre_admission"

    def test_events_op_payload_shape(self, event_server):
        with ServiceClient(event_server.host, event_server.port) as client:
            client.query(0, 3, 3)
            payload = client.events(limit=5)
        assert payload["enabled"] is True
        assert payload["capacity"] >= 1
        assert payload["count"] == len(payload["events"]) <= 5
        assert payload["total_emitted"] >= payload["count"]

    def test_finished_event_reports_errors(self, event_server):
        with ServiceClient(event_server.host, event_server.port) as client:
            response = client.request("explain", s=0, t=0, k=3)
            assert response.error is not None
            payload = client.events(limit=100)
        finished = _events_of_kind(payload, events.QUERY_FINISHED)
        failed = [e for e in finished if not e["ok"]]
        assert failed and "error" in failed[0]


class TestEventsDisabled:
    def test_events_op_reports_disabled(self, diamond):
        engine = PathQueryEngine(diamond, default_k=3)
        with serve_in_thread(engine) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                client.query(0, 3, 3)
                payload = client.events()
        assert payload["enabled"] is False
        assert payload["events"] == []


class TestSpanConcurrencyUnderService:
    def _assert_nesting(self, spans):
        """Within one thread, spans either nest or are disjoint."""
        spans = sorted(spans, key=lambda s: s[1])
        for idx, (name_a, start_a, dur_a, _) in enumerate(spans):
            end_a = start_a + dur_a
            for name_b, start_b, dur_b, _ in spans[idx + 1:]:
                end_b = start_b + dur_b
                if start_b >= end_a:
                    continue  # disjoint
                assert end_b <= end_a, (
                    f"span {name_b!r} partially overlaps {name_a!r}"
                )

    def test_interleaved_requests_keep_span_trees_clean(self):
        graph = DynamicDiGraph(
            [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3), (3, 4), (1, 4)]
        )
        engine = PathQueryEngine(graph, default_k=4)
        buffer = TraceBuffer()
        previous_enabled = obs.set_enabled(True)
        previous_sink = obs.set_trace_sink(buffer)
        try:
            with serve_in_thread(engine) as handle:
                errors = []

                def worker(worker_id):
                    try:
                        with ServiceClient(handle.host,
                                           handle.port) as client:
                            for k in (2, 3, 4):
                                client.query(0, 3 if worker_id % 2 else 4, k)
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)

                threads = [threading.Thread(target=worker, args=(n,))
                           for n in range(4)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                assert errors == []
        finally:
            obs.set_trace_sink(previous_sink)
            obs.set_enabled(previous_enabled)

        spans = buffer.spans()
        query_spans = [s for s in spans if s[0] == "service.op.query"]
        assert query_spans, "no query spans were recorded"
        by_thread = {}
        for span in spans:
            by_thread.setdefault(span[3], []).append(span)
        for thread_spans in by_thread.values():
            self._assert_nesting(thread_spans)

    def test_child_span_is_contained_in_its_parent(self):
        graph = DynamicDiGraph([(0, 1), (1, 2), (0, 2)])
        engine = PathQueryEngine(graph, default_k=2)
        buffer = TraceBuffer()
        previous_enabled = obs.set_enabled(True)
        previous_sink = obs.set_trace_sink(buffer)
        try:
            with serve_in_thread(engine) as handle:
                with ServiceClient(handle.host, handle.port) as client:
                    client.query(0, 2, 2)
        finally:
            obs.set_trace_sink(previous_sink)
            obs.set_enabled(previous_enabled)
        spans = buffer.spans()
        builds = [s for s in spans if s[0] == "service.cache.build"]
        queries = [s for s in spans if s[0] == "service.op.query"]
        assert builds and queries
        build, query = builds[0], queries[0]
        assert build[3] == query[3], "parent/child must share a thread"
        assert query[1] <= build[1]
        assert build[1] + build[2] <= query[1] + query[2]
