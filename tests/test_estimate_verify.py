"""Tests for cardinality estimation and the self-verification audit."""

import random

import pytest

from repro.baselines.bruteforce import count_paths
from repro.core.enumerator import CpeEnumerator
from repro.core.estimate import (
    derive_seed,
    estimate_path_count,
    exact_path_count,
    walk_count_bound,
)
from repro.core.verify import assert_verified, verify_enumerator
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import layered_dag
from tests.conftest import make_random_graph, random_query


class TestWalkCountBound:
    def test_exact_on_dags(self):
        g, s, t = layered_dag([3, 3])
        assert walk_count_bound(g, s, t, 5) == 9
        assert exact_path_count(g, s, t, 5) == 9

    def test_upper_bounds_path_count(self):
        rng = random.Random(21)
        for _ in range(40):
            g = make_random_graph(rng, max_edges=18)
            s, t, k = random_query(rng, g)
            bound = walk_count_bound(g, s, t, k)
            true = count_paths(g, s, t, k)
            assert bound >= true

    def test_degenerate_inputs(self):
        g = DynamicDiGraph([(0, 1)])
        assert walk_count_bound(g, 0, 1, 0) == 0
        assert walk_count_bound(g, 1, 0, 3) == 0


class TestEstimatorContract:
    """All three estimators share ``CpeEnumerator``'s query contract:
    ``s == t`` and ``k < 0`` raise ValueError instead of returning 0,
    so the planner and the enumerator reject exactly the same queries.
    """

    ESTIMATORS = [
        walk_count_bound,
        exact_path_count,
        lambda g, s, t, k: estimate_path_count(g, s, t, k, samples=10),
    ]

    @pytest.mark.parametrize("fn", ESTIMATORS)
    def test_rejects_equal_endpoints(self, fn):
        g = DynamicDiGraph([(0, 1)])
        with pytest.raises(ValueError, match="s and t"):
            fn(g, 0, 0, 3)

    @pytest.mark.parametrize("fn", ESTIMATORS)
    def test_rejects_negative_k(self, fn):
        g = DynamicDiGraph([(0, 1)])
        with pytest.raises(ValueError, match="non-negative"):
            fn(g, 0, 1, -1)

    @pytest.mark.parametrize("fn", ESTIMATORS)
    def test_zero_hop_budget_is_zero(self, fn):
        g = DynamicDiGraph([(0, 1)])
        assert fn(g, 0, 1, 0) == 0

    @pytest.mark.parametrize("fn", ESTIMATORS)
    def test_single_hop_counts_direct_edge_only(self, fn):
        g = DynamicDiGraph([(0, 1), (0, 2), (2, 1)])
        assert fn(g, 0, 1, 1) == 1

    @pytest.mark.parametrize("fn", ESTIMATORS)
    def test_unreachable_target_is_zero(self, fn):
        g = DynamicDiGraph([(0, 1)], vertices=[5])
        assert fn(g, 0, 5, 4) == 0

    @pytest.mark.parametrize("fn", ESTIMATORS)
    def test_distance_beyond_budget_is_zero(self, fn):
        g = DynamicDiGraph([(0, 1), (1, 2), (2, 3)])
        assert fn(g, 0, 3, 2) == 0

    def test_rejects_non_positive_samples(self):
        g = DynamicDiGraph([(0, 1)])
        with pytest.raises(ValueError, match="samples"):
            estimate_path_count(g, 0, 1, 2, samples=0)

    def test_loose_on_cycles(self):
        g = DynamicDiGraph([(0, 1), (1, 0), (0, 2), (1, 2)])
        assert walk_count_bound(g, 0, 2, 4) > count_paths(g, 0, 2, 4)


class TestExactPathCount:
    def test_matches_bruteforce(self):
        rng = random.Random(22)
        for _ in range(40):
            g = make_random_graph(rng, max_edges=16)
            s, t, k = random_query(rng, g)
            assert exact_path_count(g, s, t, k) == count_paths(g, s, t, k)


class TestEstimator:
    def test_unbiased_mean_on_fixed_graph(self):
        g, s, t = layered_dag([2, 3, 2])
        true = exact_path_count(g, s, t, 6)
        est = estimate_path_count(g, s, t, 6, samples=4000, seed=1)
        assert est == pytest.approx(true, rel=0.15)

    def test_deterministic_for_seed(self):
        g, s, t = layered_dag([2, 2])
        a = estimate_path_count(g, s, t, 4, samples=100, seed=5)
        b = estimate_path_count(g, s, t, 4, samples=100, seed=5)
        assert a == b

    def test_deterministic_without_seed(self):
        # Regression: ``seed=None`` used to fall through to OS entropy,
        # making unseeded estimates unreproducible run to run.  The
        # default now derives a seed from the query triple itself.
        g, s, t = layered_dag([2, 3, 2])
        a = estimate_path_count(g, s, t, 6, samples=200)
        b = estimate_path_count(g, s, t, 6, samples=200)
        explicit = estimate_path_count(
            g, s, t, 6, samples=200, seed=derive_seed(s, t, 6)
        )
        assert a == b == explicit

    def test_derived_seed_is_stable_and_query_sensitive(self):
        assert derive_seed(0, 4, 4) == derive_seed(0, 4, 4)
        assert derive_seed(0, 4, 4) != derive_seed(0, 4, 5)
        assert derive_seed("a", "b", 3) == derive_seed("a", "b", 3)

    def test_zero_when_unreachable(self):
        g = DynamicDiGraph([(0, 1)], vertices=[5])
        assert estimate_path_count(g, 0, 5, 4, samples=50, seed=1) == 0.0

    def test_averaged_over_random_instances(self):
        # average relative bias over many instances should be small
        rng = random.Random(23)
        ratios = []
        for _ in range(20):
            g = make_random_graph(rng, n_lo=5, n_hi=7, max_edges=16)
            s, t, k = random_query(rng, g, k_hi=5)
            true = exact_path_count(g, s, t, k)
            if true == 0:
                continue
            est = estimate_path_count(g, s, t, k, samples=1500, seed=9)
            ratios.append(est / true)
        assert ratios, "want at least one non-trivial instance"
        mean_ratio = sum(ratios) / len(ratios)
        assert 0.7 < mean_ratio < 1.3


class TestVerify:
    def test_clean_enumerator_passes(self, diamond):
        cpe = CpeEnumerator(diamond, 0, 3, 3)
        cpe.insert_edge(1, 2)
        cpe.delete_edge(0, 1)
        assert verify_enumerator(cpe) == []
        assert_verified(cpe)  # must not raise

    def test_detects_missing_partial(self, diamond):
        cpe = CpeEnumerator(diamond, 0, 3, 3)
        victim = next(iter(cpe.index.left.paths()))
        cpe.index.remove_left(victim)
        findings = verify_enumerator(cpe)
        assert any("misses" in f for f in findings)

    def test_detects_stale_partial(self, diamond):
        cpe = CpeEnumerator(diamond, 0, 3, 3)
        cpe.index.add_left((0, 1, 2))  # not even an edge path of interest
        findings = verify_enumerator(cpe)
        assert findings

    def test_detects_malformed_path(self, diamond):
        cpe = CpeEnumerator(diamond, 0, 3, 3)
        cpe.index.left.add(2, (0, 2, 2))  # non-simple, misfiled
        findings = verify_enumerator(cpe)
        assert any("malformed" in f or "misfiled" in f for f in findings)

    def test_detects_broken_distance_map(self, diamond):
        cpe = CpeEnumerator(diamond, 0, 3, 3)
        cpe._dist_s._dist[1] = 99  # corrupt
        findings = verify_enumerator(cpe)
        assert any("Dist_s" in f for f in findings)

    def test_assert_verified_raises_with_summary(self, diamond):
        cpe = CpeEnumerator(diamond, 0, 3, 3)
        victim = next(iter(cpe.index.right.paths()))
        cpe.index.remove_right(victim)
        with pytest.raises(AssertionError, match="audit failed"):
            assert_verified(cpe)

    def test_direct_edge_flag_checked(self, diamond):
        cpe = CpeEnumerator(diamond, 0, 3, 3)
        cpe.index.direct_edge = False  # graph still has (0, 3)
        findings = verify_enumerator(cpe)
        assert any("direct-edge" in f for f in findings)
