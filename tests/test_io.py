"""Unit tests for edge-list / update-stream IO."""

import pytest

from repro.graph import io
from repro.graph.digraph import DynamicDiGraph, EdgeUpdate


def test_edge_list_round_trip(tmp_path):
    g = DynamicDiGraph([(0, 1), (1, 2), (2, 0)])
    path = tmp_path / "g.txt"
    written = io.write_edge_list(g, path)
    assert written == 3
    loaded = io.read_edge_list(path)
    assert loaded == g


def test_read_edge_list_skips_comments(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("# comment\n% other comment\n\n1 2\n2 3\n")
    g = io.read_edge_list(path)
    assert set(g.edges()) == {(1, 2), (2, 3)}


def test_read_edge_list_undirected(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("1 2\n")
    g = io.read_edge_list(path, directed=False)
    assert g.has_edge(1, 2) and g.has_edge(2, 1)


def test_read_edge_list_extra_columns_tolerated(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("1 2 1651341\n")  # SNAP dumps may carry timestamps
    g = io.read_edge_list(path)
    assert g.has_edge(1, 2)


def test_read_edge_list_malformed(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("1\n")
    with pytest.raises(ValueError, match="expected 'u v'"):
        io.read_edge_list(path)


def test_update_stream_round_trip(tmp_path):
    stream = [EdgeUpdate(1, 2, True), EdgeUpdate(2, 3, False)]
    path = tmp_path / "u.txt"
    assert io.write_update_stream(stream, path) == 2
    assert io.read_update_stream(path) == stream


def test_read_update_stream_malformed(tmp_path):
    path = tmp_path / "u.txt"
    path.write_text("* 1 2\n")
    with pytest.raises(ValueError, match="expected"):
        io.read_update_stream(path)


def test_read_update_stream_skips_blank_and_comments(tmp_path):
    path = tmp_path / "u.txt"
    path.write_text("# header\n\n+ 4 5\n")
    assert io.read_update_stream(path) == [EdgeUpdate(4, 5, True)]


def test_write_edge_list_header(tmp_path):
    g = DynamicDiGraph([(0, 1)])
    path = tmp_path / "g.txt"
    io.write_edge_list(g, path)
    first = path.read_text().splitlines()[0]
    assert first.startswith("#")
    assert "|E|=1" in first
