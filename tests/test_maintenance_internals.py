"""White-box tests for the maintenance helpers."""

import pytest

from repro.core.construction import build_index
from repro.core.maintenance import IndexMaintainer, UpdateRecord
from repro.graph.digraph import DynamicDiGraph


def make_maintainer(edges, s, t, k):
    graph = DynamicDiGraph(edges)
    built = build_index(graph, s, t, k)
    return IndexMaintainer(graph, built.index, built.dist_s, built.dist_t)


class TestForwardBackwardDfs:
    def setup_method(self):
        self.m = make_maintainer(
            [(0, 1), (1, 2), (2, 9), (1, 3), (3, 9), (1, 9)], 0, 9, 4
        )

    def test_forward_paths_respect_range(self):
        paths = self.m._forward_paths_to_t(1, 1, 2)
        assert set(paths) == {(1, 9), (1, 2, 9), (1, 3, 9)}
        only_short = self.m._forward_paths_to_t(1, 1, 1)
        assert set(only_short) == {(1, 9)}
        only_long = self.m._forward_paths_to_t(1, 2, 2)
        assert set(only_long) == {(1, 2, 9), (1, 3, 9)}

    def test_forward_paths_avoid_s(self):
        m = make_maintainer([(0, 1), (1, 0), (0, 9), (1, 9)], 0, 9, 4)
        # paths from 1 to 9 must not pass through s=0
        assert set(m._forward_paths_to_t(1, 1, 3)) == {(1, 9)}

    def test_backward_paths_are_forward_oriented(self):
        paths = self.m._backward_paths_from_s(2, 1, 3)
        assert set(paths) == {(0, 1, 2)}

    def test_backward_paths_avoid_t(self):
        m = make_maintainer([(0, 9), (9, 1), (0, 1), (1, 2), (2, 9)], 0, 9, 4)
        # s->1 via 9 is forbidden (t interior)
        assert set(m._backward_paths_from_s(1, 1, 3)) == {(0, 1)}


class TestEdgeUsingMarks:
    def test_left_marks_cover_all_positions(self):
        m = make_maintainer(
            [(0, 1), (1, 2), (2, 3), (3, 9), (2, 9)], 0, 9, 5
        )
        from repro.core.index import PathBuckets

        removed = PathBuckets()
        m.graph.remove_edge(1, 2)
        m._mark_edge_using_left(1, 2, removed)
        marked = set(removed.paths())
        assert (0, 1, 2) in marked
        assert (0, 1, 2, 3) in marked
        for path in marked:
            assert any(a == 1 and b == 2 for a, b in zip(path, path[1:]))

    def test_right_marks_seeded_at_target_edge(self):
        m = make_maintainer([(0, 1), (1, 9), (0, 9)], 0, 9, 3)
        from repro.core.index import PathBuckets

        removed = PathBuckets()
        m.graph.remove_edge(1, 9)
        m._mark_edge_using_right(1, 9, removed)
        assert set(removed.paths()) == {(1, 9)}


class TestUpdateRecord:
    def test_delta_partial_paths(self):
        record = UpdateRecord(insert=True, changed=True)
        record.left_delta.add(1, (0, 1))
        record.right_delta.add(2, (2, 9))
        record.right_delta.add(3, (3, 9))
        assert record.delta_partial_paths == 3

    def test_apply_removals_rejects_insert_records(self):
        m = make_maintainer([(0, 1), (1, 9)], 0, 9, 3)
        record = m.insert_edge(0, 9)
        with pytest.raises(ValueError):
            m.apply_removals(record)


class TestObserveValidation:
    def test_observe_insert_requires_edge_present(self):
        m = make_maintainer([(0, 1), (1, 9)], 0, 9, 3)
        with pytest.raises(ValueError, match="not in the graph"):
            m.insert_edge(5, 6, graph_already_updated=True)

    def test_observe_delete_requires_edge_absent(self):
        m = make_maintainer([(0, 1), (1, 9)], 0, 9, 3)
        with pytest.raises(ValueError, match="still in the graph"):
            m.delete_edge(0, 1, graph_already_updated=True)

    def test_enumerator_observe_round_trip(self):
        from repro.core.enumerator import CpeEnumerator
        from repro.graph.digraph import EdgeUpdate

        g = DynamicDiGraph([(0, 1), (1, 9)])
        cpe = CpeEnumerator(g, 0, 9, 3)
        cpe.startup()
        g.add_edge(0, 9)
        result = cpe.observe(EdgeUpdate(0, 9, True))
        assert result.paths == [(0, 9)]
        g.remove_edge(1, 9)
        result = cpe.observe(EdgeUpdate(1, 9, False))
        assert set(result.paths) == {(0, 1, 9)}
        assert set(cpe.startup()) == {(0, 9)}
