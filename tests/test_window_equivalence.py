"""Cross-validation: the two sliding-window implementations must agree.

``repro.graph.temporal.replay_window`` (offline stream-to-updates
compiler) and ``repro.core.monitor.SlidingWindowMonitor`` (live monitor)
implement the same retention semantics independently; at any common
point in time the graph states they produce must coincide.
"""

import random

import pytest

from repro.core.monitor import MultiPairMonitor, SlidingWindowMonitor
from repro.graph.digraph import DynamicDiGraph
from repro.graph.temporal import TemporalEdge, poisson_stream, replay_window


def replay_state_at(n, stream, window, cutoff):
    """Edge set per replay_window after all events with ts <= cutoff."""
    graph = DynamicDiGraph(vertices=range(n))
    live = graph.copy()
    for ts, update in replay_window(graph, stream, window):
        if ts <= cutoff:
            live.apply_update(update)
    return set(live.edges())


def monitor_state_at(n, stream, window, cutoff):
    """Edge set per SlidingWindowMonitor advanced exactly to cutoff."""
    graph = DynamicDiGraph(vertices=range(n))
    monitor = MultiPairMonitor(graph, k=3)
    monitor.watch(0, n - 1)
    win = SlidingWindowMonitor(monitor, window)
    for edge in stream:
        if edge.timestamp > cutoff:
            break
        win.offer(edge.u, edge.v, edge.timestamp)
    win.advance(cutoff)
    return set(graph.edges())


@pytest.mark.parametrize("seed", range(10))
def test_mid_stream_states_agree(seed):
    rng = random.Random(seed)
    n = rng.randint(5, 10)
    window = rng.uniform(1.5, 6.0)
    stream = poisson_stream(range(n), rate=2.0, count=80, seed=seed + 100)
    # compare at several cut points, including between arrivals
    cutoffs = [
        stream[20].timestamp,
        stream[40].timestamp + 0.3,
        stream[60].timestamp,
        stream[-1].timestamp,
    ]
    for cutoff in cutoffs:
        via_replay = replay_state_at(n, stream, window, cutoff)
        via_monitor = monitor_state_at(n, stream, window, cutoff)
        assert via_replay == via_monitor, f"diverged at t={cutoff}"


def test_mid_stream_state_is_nontrivial():
    """Guard against vacuous agreement: the compared states must
    actually contain live edges at some cut point."""
    stream = poisson_stream(range(8), rate=5.0, count=60, seed=3)
    cutoff = stream[30].timestamp
    state = replay_state_at(8, stream, window=4.0, cutoff=cutoff)
    assert state, "expected live edges mid-stream"


def test_duplicate_timestamps_handled_identically():
    stream = [
        TemporalEdge(0, 1, 1.0),
        TemporalEdge(1, 2, 1.0),
        TemporalEdge(0, 1, 1.0),  # duplicate arrival at the same instant
        TemporalEdge(2, 3, 4.0),
    ]
    at_arrival = replay_state_at(5, stream, window=2.0, cutoff=4.0)
    via_monitor = monitor_state_at(5, stream, window=2.0, cutoff=4.0)
    assert at_arrival == via_monitor == {(2, 3)}
