"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_datasets_command(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "Reactome" in out
    assert out.count("\n") == 14


def test_stats_command(capsys):
    assert main(["stats", "RT", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "|V|" in out and "D90" in out


def test_query_command(capsys):
    assert main(["query", "RT", "0", "5", "4", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "# " in out and "paths" in out


def test_query_count_only(capsys):
    assert main(["query", "RT", "0", "5", "4", "--scale", "0.1", "--count"]) == 0
    out = capsys.readouterr().out.strip()
    assert out.isdigit()


def test_query_unknown_vertex(capsys):
    assert main(["query", "RT", "0", "999999", "4", "--scale", "0.1"]) == 2
    assert "not in the graph" in capsys.readouterr().err


def test_experiment_command(capsys):
    code = main(
        ["experiment", "table1", "--scale", "0.05", "--queries", "1"]
    )
    assert code == 0
    assert "Table I" in capsys.readouterr().out


def test_experiment_csv(capsys):
    code = main(
        ["experiment", "table1", "--scale", "0.05", "--csv"]
    )
    assert code == 0
    first = capsys.readouterr().out.splitlines()[0]
    assert first.startswith("Name,")


def test_experiment_unknown(capsys):
    assert main(["experiment", "nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_no_command_exits():
    with pytest.raises(SystemExit):
        main([])
