"""Tests for the related-problem algorithms (Yen, Johnson)."""

import random
from itertools import permutations

import pytest

from repro.baselines.bruteforce import path_set
from repro.graph.digraph import DynamicDiGraph
from repro.related.johnson import count_cycles, elementary_cycles
from repro.related.yen import k_shortest_simple_paths
from tests.conftest import make_random_graph


def brute_k_shortest(graph, s, t, count):
    """All simple paths, sorted (hops, lexicographic), truncated."""
    everything = sorted(
        path_set(graph, s, t, graph.num_vertices),
        key=lambda p: (len(p), tuple(repr(v) for v in p)),
    )
    return everything[:count]


def brute_cycles(graph, max_length=None):
    """All elementary circuits in canonical rotated form."""
    vertices = list(graph.vertices())
    limit = max_length if max_length is not None else len(vertices)
    out = set()
    for v in vertices:
        if graph.has_edge(v, v) and limit >= 1:
            out.add((v, v))
    for size in range(2, limit + 1):
        for combo in permutations(vertices, size):
            if all(
                graph.has_edge(a, b)
                for a, b in zip(combo, combo[1:] + combo[:1])
            ):
                pivot = min(range(size), key=lambda i: repr(combo[i]))
                rotated = combo[pivot:] + combo[:pivot]
                out.add(rotated + (rotated[0],))
    return out


class TestYen:
    def test_shortest_first(self, diamond):
        got = k_shortest_simple_paths(diamond, 0, 3, 3)
        assert got[0] == (0, 3)
        assert set(got[1:]) == {(0, 1, 3), (0, 2, 3)}

    def test_count_truncation(self, diamond):
        assert len(k_shortest_simple_paths(diamond, 0, 3, 2)) == 2
        assert len(k_shortest_simple_paths(diamond, 0, 3, 99)) == 3

    def test_no_path(self):
        g = DynamicDiGraph([(0, 1)], vertices=[5])
        assert k_shortest_simple_paths(g, 0, 5, 3) == []

    def test_source_equals_target(self, diamond):
        assert k_shortest_simple_paths(diamond, 0, 0, 3) == []

    def test_nonpositive_count(self, diamond):
        assert k_shortest_simple_paths(diamond, 0, 3, 0) == []

    def test_lengths_nondecreasing(self):
        rng = random.Random(2)
        for _ in range(25):
            g = make_random_graph(rng, max_edges=16)
            s, t = rng.sample(list(g.vertices()), 2)
            got = k_shortest_simple_paths(g, s, t, 6)
            lengths = [len(p) for p in got]
            assert lengths == sorted(lengths)
            assert len(set(got)) == len(got)

    def test_matches_bruteforce_on_small_graphs(self):
        rng = random.Random(3)
        for _ in range(25):
            g = make_random_graph(rng, n_lo=4, n_hi=6, max_edges=12)
            s, t = rng.sample(list(g.vertices()), 2)
            got = k_shortest_simple_paths(g, s, t, 4)
            want = brute_k_shortest(g, s, t, 4)
            # same multiset of lengths (tie order may differ within a length)
            assert [len(p) for p in got] == [len(p) for p in want]
            assert set(got) <= path_set(g, s, t, g.num_vertices)


class TestJohnson:
    def test_triangle(self):
        g = DynamicDiGraph([(0, 1), (1, 2), (2, 0)])
        assert set(elementary_cycles(g)) == {(0, 1, 2, 0)}

    def test_two_cycles_sharing_a_vertex(self):
        g = DynamicDiGraph([(0, 1), (1, 0), (1, 2), (2, 1)])
        assert set(elementary_cycles(g)) == {(0, 1, 0), (1, 2, 1)}

    def test_self_loops(self):
        g = DynamicDiGraph([(0, 0), (1, 1), (0, 1)])
        assert set(elementary_cycles(g)) == {(0, 0), (1, 1)}

    def test_dag_has_no_cycles(self):
        g = DynamicDiGraph([(0, 1), (0, 2), (1, 3), (2, 3)])
        assert count_cycles(g) == 0

    def test_complete_graph_count(self):
        # K4 directed both ways: cycles of length 1? none; 2: C(4,2)=6;
        # 3: 2 * C(4,3) = 8; 4: 3 * 2 = 6  -> total 20
        g = DynamicDiGraph(
            (u, v) for u in range(4) for v in range(4) if u != v
        )
        assert count_cycles(g) == 20

    def test_length_bound(self):
        g = DynamicDiGraph(
            (u, v) for u in range(4) for v in range(4) if u != v
        )
        assert count_cycles(g, max_length=2) == 6
        assert count_cycles(g, max_length=3) == 14

    def test_matches_bruteforce_randomized(self):
        rng = random.Random(5)
        for _ in range(25):
            g = make_random_graph(rng, n_lo=3, n_hi=6, max_edges=14)
            if rng.random() < 0.3:
                v = rng.choice(list(g.vertices()))
                g.add_edge(v, v)
            got = list(elementary_cycles(g))
            assert len(got) == len(set(got)), "duplicates"
            assert set(got) == brute_cycles(g)

    def test_bounded_matches_bruteforce_randomized(self):
        rng = random.Random(6)
        for _ in range(20):
            g = make_random_graph(rng, n_lo=3, n_hi=6, max_edges=14)
            bound = rng.randint(1, 4)
            got = set(elementary_cycles(g, max_length=bound))
            assert got == brute_cycles(g, bound)

    def test_zero_bound(self):
        g = DynamicDiGraph([(0, 0)])
        assert count_cycles(g, max_length=0) == 0
