"""Acceptance tests for cross-process distributed observability.

The ISSUE bar, as tests:

* a fixed-seed query under a :class:`ShardedMonitor` with 2+ workers
  yields coordinator *and* shard spans that share a single
  ``trace_id``, merged into one Chrome trace an independent validator
  accepts;
* fleet-wide histogram counts reported by the coordinator equal the
  sum of the per-shard counts;
* the ``trace`` / ``history`` / ``flight`` wire ops work end-to-end
  over a live server with a sharded engine;
* the byte-identity parallel equivalence gate still passes with
  tracing enabled and a context bound.
"""

import sys
from pathlib import Path

import pytest

from repro import obs
from repro.graph.digraph import DynamicDiGraph
from repro.obs import events
from repro.obs.distributed import (
    ProcessTrace,
    TraceContext,
    bind_context,
    merge_chrome_trace,
    shift_instants,
    shift_spans,
)
from repro.obs.flight import validate_flight_bundle
from repro.obs.trace import TraceBuffer, validate_chrome_trace
from repro.parallel import ShardedMonitor
from repro.service.client import ServiceClient
from repro.service.engine import PathQueryEngine
from repro.service.server import serve_in_thread
from tests.test_parallel import K, build_ops, run_script

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from benchmarks.check_flight import check_flight  # noqa: E402

SEED = 97

DIAMOND = [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3), (1, 2)]


@pytest.fixture(autouse=True)
def _obs_enabled():
    """Metrics + events on, fresh registry, no leftover sinks."""
    previous = obs.set_enabled(True)
    previous_events = events.set_enabled(True)
    obs.reset()
    events.log().clear()
    yield
    obs.set_trace_sink(None)
    obs.set_enabled(previous)
    events.set_enabled(previous_events)
    obs.reset()


def collect_fleet_trace(workers=2):
    """One traced watch+update against a sharded monitor; returns
    ``(context, coordinator_buffer, shard_traces, fleet_states)``."""
    graph = DynamicDiGraph(DIAMOND, vertices=range(6))
    buffer = TraceBuffer()
    previous_sink = obs.set_trace_sink(buffer)
    context = TraceContext.new_root(corr_id="acceptance-1")
    try:
        with ShardedMonitor(graph, K, workers=workers, tracing=True) as fleet:
            with bind_context(context):
                with obs.span("service.op.watch"):
                    fleet.watch(0, 3, K)
                with obs.span("service.op.update"):
                    fleet.insert_edge(2, 1)
            shard_traces = fleet.collect_traces()
            fleet_states = fleet.fleet_metric_states()
    finally:
        obs.set_trace_sink(previous_sink)
    return context, buffer, shard_traces, fleet_states


class TestShardedTraceStitching:
    def test_one_trace_id_across_coordinator_and_shards(self):
        context, _, shard_traces, _ = collect_fleet_trace(workers=2)
        assert len(shard_traces) == 2
        for shard in shard_traces:
            assert shard["trace_ids"] == [context.trace_id]
            assert any(
                span[0] == "parallel.shard.dispatch"
                for span in shard["spans"]
            )

    def test_merged_chrome_trace_validates(self):
        context, buffer, shard_traces, _ = collect_fleet_trace(workers=2)
        processes = [
            ProcessTrace(
                label="coordinator",
                pid=0,
                spans=buffer.spans(),
                instants=buffer.instants(),
            )
        ]
        for shard in shard_traces:
            processes.append(ProcessTrace(
                label=f"shard {shard['shard']}",
                pid=shard["pid"],
                spans=shift_spans(shard["spans"], shard["offset_seconds"]),
                instants=shift_instants(
                    shard["instants"], shard["offset_seconds"]
                ),
            ))
        trace = merge_chrome_trace(
            processes, metadata={"trace_id": context.trace_id}
        )
        assert validate_chrome_trace(trace) == []
        pids_with_spans = {
            e["pid"] for e in trace["traceEvents"] if e["ph"] == "X"
        }
        assert len(pids_with_spans) >= 3  # coordinator + both shards

    def test_shard_offsets_place_spans_within_coordinator_window(self):
        _, buffer, shard_traces, _ = collect_fleet_trace(workers=2)
        coordinator_spans = buffer.spans()
        start = min(s[1] for s in coordinator_spans)
        end = max(s[1] + s[2] for s in coordinator_spans)
        for shard in shard_traces:
            for span in shift_spans(
                shard["spans"], shard["offset_seconds"]
            ):
                # Dispatch happened while the coordinator was inside
                # its op spans; allow generous slack for pipe latency.
                assert start - 1.0 <= span[1] <= end + 1.0

    def test_collect_traces_clear_semantics(self):
        graph = DynamicDiGraph(DIAMOND, vertices=range(6))
        with ShardedMonitor(graph, K, workers=2, tracing=True) as fleet:
            with bind_context(TraceContext.new_root()):
                fleet.watch(0, 3, K)
            first = fleet.collect_traces(clear=True)
            assert any(shard["spans"] for shard in first)
            second = fleet.collect_traces(clear=True)
            assert all(shard["spans"] == [] for shard in second)


class TestFleetMetrics:
    def test_fleet_counts_equal_sum_of_shards(self):
        from repro.obs.metrics import merge_states

        _, _, _, fleet_states = collect_fleet_trace(workers=2)
        assert len(fleet_states) == 2
        name = "parallel.shard.dispatch.seconds"
        per_shard = [
            state["histograms"][name]["count"]
            for _, state in fleet_states
        ]
        assert all(count > 0 for count in per_shard)
        merged = merge_states(*(state for _, state in fleet_states))
        assert merged["histograms"][name]["count"] == sum(per_shard)


class TestEquivalenceWithTracing:
    def test_traced_sharded_matches_single_process(self):
        from repro.core.monitor import MultiPairMonitor

        edges, ops = build_ops(SEED)
        reference = run_script(
            edges, ops, lambda g: MultiPairMonitor(g, K)
        )
        context = TraceContext.new_root()
        with bind_context(context):
            traced = run_script(
                edges, ops,
                lambda g: ShardedMonitor(g, K, workers=2, tracing=True),
            )
        assert traced == reference


class TestWireOps:
    @pytest.fixture()
    def sharded_server(self):
        graph = DynamicDiGraph(DIAMOND, vertices=range(6))
        engine = PathQueryEngine(
            graph,
            default_k=K,
            workers=2,
            tracing=True,
            flight_window=30.0,
            timeseries_interval=0.05,
        )
        handle = serve_in_thread(engine)
        try:
            yield handle
        finally:
            handle.stop()
            engine.close()

    def _traffic(self, client):
        client.watch(0, 3, k=K)
        client.query(0, 3, K)
        client.insert_edge(2, 1)

    def test_trace_op_returns_one_merged_trace(self, sharded_server):
        with ServiceClient(
            sharded_server.host, sharded_server.port
        ) as client:
            self._traffic(client)
            result = client.trace()
            assert result["enabled"] is True
            assert result["processes"] == 3
            assert len(result["trace_ids"]) >= 1
            assert validate_chrome_trace(result["trace"]) == []

    def test_metrics_op_reports_fleet_sums(self, sharded_server):
        with ServiceClient(
            sharded_server.host, sharded_server.port
        ) as client:
            self._traffic(client)
            result = client.metrics(per_shard=True)
            assert result["fleet"]["workers"] == 2
            name = "parallel.shard.dispatch.seconds"
            fleet_count = result["metrics"]["histograms"][name]["count"]
            shard_counts = [
                shard["metrics"]["histograms"][name]["count"]
                for shard in result["shards"]
            ]
            assert len(shard_counts) == 2
            assert fleet_count == sum(shard_counts) > 0

            prometheus = client.metrics(format="prometheus")
            assert "parallel_shard_dispatch_seconds" in prometheus["text"]

    def test_history_op_returns_ring_snapshot(self, sharded_server):
        with ServiceClient(
            sharded_server.host, sharded_server.port
        ) as client:
            self._traffic(client)
            result = client.history()
            assert result["enabled"] is True
            history = result["history"]
            assert history["interval"] == pytest.approx(0.05)
            assert history["samples"]

    def test_flight_op_returns_fleet_bundle(self, sharded_server):
        with ServiceClient(
            sharded_server.host, sharded_server.port
        ) as client:
            self._traffic(client)
            result = client.flight(reason="acceptance")
            assert result["enabled"] is True
            bundle = result["bundle"]
            assert validate_flight_bundle(bundle) == []
            assert check_flight(
                bundle, reason="acceptance", min_processes=3
            ) == []
            roles = sorted(
                (p["role"], p["shard"]) for p in bundle["processes"]
            )
            assert roles == [
                ("coordinator", None), ("shard", 0), ("shard", 1),
            ]
