"""Smoke + shape tests for the experiment drivers (tiny scale)."""

import pytest

from repro.experiments import (
    fig6_startup,
    fig7_update,
    fig8_insdel,
    fig9_vary_k,
    fig10_hot,
    fig11_scalability,
    fig12_memory,
    table1,
)
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    ms,
    speedup,
    summarize,
)

TINY = ExperimentConfig(
    scale=0.12, num_queries=2, num_updates=6, k=5, seed=3,
    datasets=("RT", "TS"),
)


class TestCommon:
    def test_add_row_validates_width(self):
        res = ExperimentResult("X", "t", ["a", "b"])
        with pytest.raises(ValueError):
            res.add_row(1)
        res.add_row(1, 2)
        assert res.rows == [[1, 2]]

    def test_series_and_row_for(self):
        res = ExperimentResult("X", "t", ["name", "v"])
        res.add_row("a", 1)
        res.add_row("b", 2)
        assert res.series("v") == [1, 2]
        assert res.row_for("b") == ["b", 2]
        with pytest.raises(KeyError):
            res.row_for("c")

    def test_format_and_csv(self):
        res = ExperimentResult("Fig. X", "demo", ["name", "v"])
        res.add_row("a", 1.234567)
        res.notes.append("a note")
        text = res.format()
        assert "Fig. X" in text and "note: a note" in text
        assert res.to_csv().splitlines()[0] == "name,v"

    def test_helpers(self):
        assert ms(0.5) == 500.0
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(1.0, 0.0) == float("inf")
        assert summarize([1.0, 3.0])["mean"] == 2.0
        assert summarize([])["max"] == 0.0

    def test_config_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        monkeypatch.setenv("REPRO_DATASETS", "RT,TS")
        cfg = ExperimentConfig.from_env(num_queries=9)
        assert cfg.scale == 0.5
        assert cfg.datasets == ("RT", "TS")
        assert cfg.num_queries == 9

    def test_dataset_names_override(self):
        cfg = ExperimentConfig(datasets=("WG",))
        assert cfg.dataset_names(("RT",)) == ("WG",)
        assert ExperimentConfig().dataset_names(("RT",)) == ("RT",)


class TestTable1:
    def test_rows_and_columns(self):
        res = table1.run(TINY)
        assert [row[0] for row in res.rows] == ["RT", "TS"]
        assert "d_avg" in res.headers

    def test_paper_columns_carried(self):
        res = table1.run(TINY)
        rt = res.row_for("RT")
        assert rt[res.headers.index("paper |V|")] == 6_300


class TestFig6:
    def test_all_methods_timed(self):
        res = fig6_startup.run(TINY)
        assert len(res.rows) == 2
        for row in res.rows:
            # every timing cell is a number or "-" (CSM* on directed sets)
            for cell in row[1:5]:
                assert cell == "-" or cell >= 0

    def test_csm_only_on_undirected(self):
        cfg = ExperimentConfig(
            scale=0.12, num_queries=1, k=4, datasets=("RT", "AM")
        )
        res = fig6_startup.run(cfg)
        csm_col = res.headers.index("CSM*")
        assert res.row_for("RT")[csm_col] == "-"
        assert res.row_for("AM")[csm_col] != "-"


class TestUpdateExperiments:
    def test_fig7_shape(self):
        res = fig7_update.run(TINY)
        assert len(res.rows) == 2
        assert "CPE mean" in res.headers

    def test_fig8_split(self):
        res = fig8_insdel.run(TINY)
        assert {"insert mean", "delete mean"} <= set(res.headers)

    def test_fig9_k_column(self):
        res = fig9_vary_k.run(TINY, ks=(3, 4))
        assert res.series("k") == [3, 4, 3, 4]

    def test_fig10(self):
        res = fig10_hot.run(TINY)
        assert [row[0] for row in res.rows] == ["RT", "TS"]


class TestFig11:
    def test_breakdown_sums(self):
        cfg = ExperimentConfig(scale=0.12, num_queries=1, num_updates=4, seed=3)
        res = fig11_scalability.run(cfg, dataset="RT", ks=(3, 4))
        for row in res.rows:
            prep, ic, se, overall = row[1], row[2], row[3], row[4]
            assert overall == pytest.approx(prep + ic + se, rel=1e-6)


class TestExtraExperiments:
    def test_throughput_runs(self):
        from repro.experiments import throughput

        cfg = ExperimentConfig(
            scale=0.12, num_queries=1, num_updates=4, k=4, seed=3,
            datasets=("RT",),
        )
        res = throughput.run(cfg)
        assert res.headers[0] == "Dataset"
        assert len(res.rows) == 1
        # CPE throughput should be positive whenever updates existed
        cpe_col = res.headers.index("CPE_update")
        assert res.rows[0][cpe_col] >= 0

    def test_ablation_runs(self):
        from repro.experiments import ablation

        cfg = ExperimentConfig(
            scale=0.12, num_queries=1, k=4, seed=3, datasets=("RT",)
        )
        res = ablation.run(cfg)
        assert len(res.rows) == 1

    def test_csm_variants_runs(self):
        from repro.experiments import csm_variants

        cfg = ExperimentConfig(
            scale=0.12, num_queries=1, num_updates=4, k=4, seed=3,
            datasets=("RT",),
        )
        res = csm_variants.run(cfg)
        if res.rows:  # tiny analogue may admit no relevant updates
            winner_col = res.headers.index("CSM winner")
            assert res.rows[0][winner_col] in {"lite", "DCG"}


class TestFig12:
    def test_columns(self):
        cfg = ExperimentConfig(
            scale=0.12, num_queries=1, k=4, seed=3, datasets=("RT",)
        )
        res = fig12_memory.run(cfg, ks=(3, 4))
        assert res.series("k") == [3, 4]
        for row in res.rows:
            assert row[2] >= 0 and row[3] >= 0
