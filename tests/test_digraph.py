"""Unit tests for the dynamic digraph substrate."""

import pytest

from repro.graph.digraph import DynamicDiGraph, EdgeUpdate


class TestVertices:
    def test_add_vertex_new(self):
        g = DynamicDiGraph()
        assert g.add_vertex(1) is True
        assert g.has_vertex(1)
        assert g.num_vertices == 1

    def test_add_vertex_duplicate(self):
        g = DynamicDiGraph(vertices=[1])
        assert g.add_vertex(1) is False
        assert g.num_vertices == 1

    def test_remove_vertex_drops_incident_edges(self):
        g = DynamicDiGraph([(0, 1), (1, 2), (2, 1)])
        assert g.remove_vertex(1) is True
        assert g.num_edges == 0
        assert not g.has_vertex(1)
        assert g.has_vertex(0) and g.has_vertex(2)

    def test_remove_missing_vertex(self):
        g = DynamicDiGraph()
        assert g.remove_vertex(5) is False

    def test_vertices_iteration_order(self):
        g = DynamicDiGraph(vertices=[3, 1, 2])
        assert list(g.vertices()) == [3, 1, 2]

    def test_contains_and_len(self):
        g = DynamicDiGraph(vertices=range(4))
        assert 2 in g
        assert 9 not in g
        assert len(g) == 4

    def test_hashable_vertex_types(self):
        g = DynamicDiGraph()
        g.add_edge("a", ("tuple", 1))
        assert g.has_edge("a", ("tuple", 1))


class TestEdges:
    def test_add_edge_registers_endpoints(self):
        g = DynamicDiGraph()
        assert g.add_edge(1, 2) is True
        assert g.has_vertex(1) and g.has_vertex(2)
        assert g.num_edges == 1

    def test_add_edge_duplicate(self):
        g = DynamicDiGraph([(1, 2)])
        assert g.add_edge(1, 2) is False
        assert g.num_edges == 1

    def test_directedness(self):
        g = DynamicDiGraph([(1, 2)])
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 1)

    def test_remove_edge(self):
        g = DynamicDiGraph([(1, 2)])
        assert g.remove_edge(1, 2) is True
        assert g.num_edges == 0
        assert not g.has_edge(1, 2)

    def test_remove_missing_edge(self):
        g = DynamicDiGraph([(1, 2)])
        assert g.remove_edge(2, 1) is False
        assert g.remove_edge(7, 8) is False
        assert g.num_edges == 1

    def test_self_loop_allowed(self):
        g = DynamicDiGraph()
        assert g.add_edge(1, 1) is True
        assert g.has_edge(1, 1)
        assert g.in_degree(1) == g.out_degree(1) == 1

    def test_edges_iteration(self):
        edges = {(0, 1), (1, 2), (2, 0)}
        g = DynamicDiGraph(edges)
        assert set(g.edges()) == edges

    def test_reinsert_after_delete(self):
        g = DynamicDiGraph([(1, 2)])
        g.remove_edge(1, 2)
        assert g.add_edge(1, 2) is True
        assert g.num_edges == 1


class TestAdjacency:
    def test_neighbors(self):
        g = DynamicDiGraph([(0, 1), (0, 2), (3, 0)])
        assert set(g.out_neighbors(0)) == {1, 2}
        assert set(g.in_neighbors(0)) == {3}

    def test_neighbors_of_missing_vertex_empty(self):
        g = DynamicDiGraph()
        assert len(g.out_neighbors(42)) == 0
        assert len(g.in_neighbors(42)) == 0

    def test_degrees(self):
        g = DynamicDiGraph([(0, 1), (0, 2), (3, 0)])
        assert g.out_degree(0) == 2
        assert g.in_degree(0) == 1
        assert g.degree(0) == 3
        assert g.degree(99) == 0

    def test_neighbor_sets_track_mutations(self):
        g = DynamicDiGraph([(0, 1)])
        live = g.out_neighbors(0)
        g.add_edge(0, 2)
        assert 2 in live


class TestUpdates:
    def test_apply_insert(self):
        g = DynamicDiGraph()
        assert g.apply_update(EdgeUpdate(0, 1, True)) is True
        assert g.has_edge(0, 1)

    def test_apply_delete(self):
        g = DynamicDiGraph([(0, 1)])
        assert g.apply_update(EdgeUpdate(0, 1, False)) is True
        assert not g.has_edge(0, 1)

    def test_apply_noop_updates(self):
        g = DynamicDiGraph([(0, 1)])
        assert g.apply_update(EdgeUpdate(0, 1, True)) is False
        assert g.apply_update(EdgeUpdate(5, 6, False)) is False

    def test_apply_stream_counts_changes(self):
        g = DynamicDiGraph()
        stream = [
            EdgeUpdate(0, 1, True),
            EdgeUpdate(0, 1, True),  # duplicate: no change
            EdgeUpdate(0, 1, False),
        ]
        assert g.apply_updates(stream) == 2
        assert g.num_edges == 0

    def test_update_helpers(self):
        up = EdgeUpdate(3, 4, True)
        assert up.edge == (3, 4)
        assert up.symbol == "+"
        assert up.inverted() == EdgeUpdate(3, 4, False)
        assert str(EdgeUpdate(1, 2, False)) == "e(1, 2, -)"


class TestViewsAndCopies:
    def test_reverse_view_edges(self):
        g = DynamicDiGraph([(0, 1)])
        r = g.reverse_view()
        assert r.has_edge(1, 0)
        assert not r.has_edge(0, 1)
        assert set(r.out_neighbors(1)) == {0}
        assert set(r.in_neighbors(0)) == {1}

    def test_reverse_view_is_live(self):
        g = DynamicDiGraph()
        r = g.reverse_view()
        g.add_edge(5, 6)
        assert r.has_edge(6, 5)
        assert r.num_edges == 1

    def test_copy_independent(self):
        g = DynamicDiGraph([(0, 1)])
        c = g.copy()
        c.add_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g != c

    def test_copy_equality(self):
        g = DynamicDiGraph([(0, 1), (1, 2)])
        assert g.copy() == g

    def test_induced_subgraph(self):
        g = DynamicDiGraph([(0, 1), (1, 2), (2, 3), (0, 3)])
        sub = g.induced_subgraph({0, 1, 3})
        assert set(sub.edges()) == {(0, 1), (0, 3)}
        assert sub.num_vertices == 3

    def test_induced_subgraph_ignores_unknown_vertices(self):
        g = DynamicDiGraph([(0, 1)])
        sub = g.induced_subgraph({0, 1, 99})
        assert not sub.has_vertex(99)

    def test_repr_mentions_sizes(self):
        g = DynamicDiGraph([(0, 1)])
        assert "num_vertices=2" in repr(g)
        assert "num_edges=1" in repr(g)


def test_equality_against_other_types():
    assert DynamicDiGraph().__eq__(42) is NotImplemented


def test_edge_count_consistency_under_random_ops():
    import random

    rng = random.Random(0)
    g = DynamicDiGraph(vertices=range(10))
    reference = set()
    for _ in range(500):
        u, v = rng.sample(range(10), 2)
        if rng.random() < 0.5:
            g.add_edge(u, v)
            reference.add((u, v))
        else:
            g.remove_edge(u, v)
            reference.discard((u, v))
    assert set(g.edges()) == reference
    assert g.num_edges == len(reference)
