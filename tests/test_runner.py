"""Tests for the workload runner."""

import pytest

from repro.graph.digraph import DynamicDiGraph, EdgeUpdate
from repro.workloads.queries import Query
from repro.workloads.runner import (
    DynamicRun,
    bcdfs_runner,
    bcjoin_runner,
    cpe_factory,
    cpe_startup_runner,
    csm_factory,
    csm_startup_runner,
    pathenum_runner,
    recompute_factory,
    run_dynamic,
    run_static,
    tdfs_runner,
)


@pytest.fixture
def graph():
    return DynamicDiGraph([(0, 1), (1, 2), (0, 2), (2, 3)])


ALL_STATIC = [
    cpe_startup_runner,
    pathenum_runner,
    bcjoin_runner,
    bcdfs_runner,
    tdfs_runner,
    csm_startup_runner,
]


@pytest.mark.parametrize("runner", ALL_STATIC)
def test_run_static_counts_paths(runner, graph):
    result = run_static(runner, graph, Query(0, 3, 3))
    assert result.num_paths == 2  # (0,1,2,3) and (0,2,3)
    assert result.seconds >= 0


@pytest.mark.parametrize(
    "factory", [cpe_factory, csm_factory, recompute_factory]
)
def test_run_dynamic_records_every_update(factory, graph):
    updates = [EdgeUpdate(1, 3, True), EdgeUpdate(1, 3, False)]
    run = run_dynamic(factory, graph, Query(0, 3, 3), updates)
    assert run.startup_paths == 2
    assert len(run.update_seconds) == 2
    assert run.delta_counts == [1, 1]  # (0, 1, 3) appears then disappears
    assert run.inserts == [True, False]
    # the caller's graph must stay untouched
    assert not graph.has_edge(1, 3)


class TestDynamicRunSummaries:
    def make(self):
        run = DynamicRun(Query(0, 1, 3), 0.0, 0)
        run.update_seconds = [0.1, 0.2, 0.3, 0.4]
        run.delta_counts = [1, 2, 3, 4]
        run.inserts = [True, False, True, False]
        return run

    def test_mean(self):
        assert self.make().mean_update_seconds == pytest.approx(0.25)

    def test_percentile_small_sample_is_max(self):
        assert self.make().percentile_update_seconds(0.999) == pytest.approx(0.4)

    def test_split_means(self):
        run = self.make()
        assert run.mean_seconds_for(True) == pytest.approx(0.2)
        assert run.mean_seconds_for(False) == pytest.approx(0.3)
        assert run.mean_delta_for(True) == pytest.approx(2.0)
        assert run.mean_delta_for(False) == pytest.approx(3.0)

    def test_total_delta(self):
        assert self.make().total_delta == 10

    def test_empty_run_safe(self):
        run = DynamicRun(Query(0, 1, 3), 0.0, 0)
        assert run.mean_update_seconds == 0.0
        assert run.percentile_update_seconds() == 0.0
        assert run.mean_seconds_for(True) == 0.0
        assert run.mean_delta_for(False) == 0.0
