"""Property-based tests for monitors, batching and the CSM-DCG index."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.apps.cycles import CycleMonitor
from repro.baselines.bruteforce import path_set
from repro.baselines.csm_dcg import CsmDcgEnumerator
from repro.core.batch import CpeBatch, compress_stream
from repro.core.enumerator import CpeEnumerator
from repro.core.monitor import MultiPairMonitor
from repro.graph.digraph import DynamicDiGraph, EdgeUpdate
from tests.test_apps_cycles import brute_cycles

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def stream_cases(draw, max_n=7, max_edges=14, max_stream=10):
    n = draw(st.integers(min_value=3, max_value=max_n))
    pairs = st.tuples(
        st.integers(0, n - 1), st.integers(0, n - 1)
    ).filter(lambda e: e[0] != e[1])
    edges = draw(st.lists(pairs, max_size=max_edges))
    stream = draw(st.lists(pairs, max_size=max_stream))
    k = draw(st.integers(1, 5))
    return n, edges, stream, k


@given(stream_cases())
@SETTINGS
def test_multipair_monitor_consistency(case):
    n, edges, stream, k = case
    graph = DynamicDiGraph(edges, vertices=range(n))
    monitor = MultiPairMonitor(graph, k)
    monitor.watch(0, n - 1)
    if n > 3:
        monitor.watch(1, 2)
    for u, v in stream:
        monitor.apply(EdgeUpdate(u, v, not graph.has_edge(u, v)))
    for (s, t), paths in monitor.results().items():
        assert set(paths) == path_set(graph, s, t, k)
        assert len(paths) == len(set(paths))


@given(stream_cases())
@SETTINGS
def test_cycle_monitor_counts(case):
    n, edges, stream, k = case
    graph = DynamicDiGraph(edges, vertices=range(n))
    monitor = CycleMonitor(graph, 0, k)
    for u, v in stream:
        if graph.has_edge(u, v):
            monitor.delete_edge(u, v)
        else:
            monitor.insert_edge(u, v)
    expected = brute_cycles(graph, 0, k)
    assert monitor.cycles() == expected
    assert monitor.cycle_count() == len(expected)


@given(stream_cases())
@SETTINGS
def test_batch_equals_sequential(case):
    n, edges, stream, k = case
    graph = DynamicDiGraph(edges, vertices=range(n))
    before = path_set(graph, 0, n - 1, k)
    updates = []
    scratch = graph.copy()
    for u, v in stream:
        upd = EdgeUpdate(u, v, not scratch.has_edge(u, v))
        scratch.apply_update(upd)
        updates.append(upd)
    batch = CpeBatch(CpeEnumerator(graph, 0, n - 1, k))
    result = batch.apply(updates, compress=True)
    after = path_set(graph, 0, n - 1, k)
    assert set(result.new_paths) == after - before
    assert set(result.deleted_paths) == before - after


@given(stream_cases())
@SETTINGS
def test_compress_stream_net_equivalence(case):
    n, edges, stream, k = case
    graph = DynamicDiGraph(edges, vertices=range(n))
    updates = [
        EdgeUpdate(u, v, insert)
        for (u, v), insert in zip(
            stream, [i % 2 == 0 for i in range(len(stream))]
        )
    ]
    full = graph.copy()
    for upd in updates:
        full.apply_update(upd)
    net = graph.copy()
    for upd in compress_stream(graph, updates):
        assert net.apply_update(upd)
    assert net == full


@given(stream_cases())
@SETTINGS
def test_csm_dcg_counters_and_deltas(case):
    n, edges, stream, k = case
    graph = DynamicDiGraph(edges, vertices=range(n))
    enum = CsmDcgEnumerator(graph, 0, n - 1, k)
    current = path_set(graph, 0, n - 1, k)
    for u, v in stream:
        if graph.has_edge(u, v):
            result = enum.delete_edge(u, v)
            fresh = path_set(graph, 0, n - 1, k)
            assert set(result.paths) == current - fresh
        else:
            result = enum.insert_edge(u, v)
            fresh = path_set(graph, 0, n - 1, k)
            assert set(result.paths) == fresh - current
        current = fresh
    assert enum.counters_consistent()
    assert set(enum.startup()) == current
