"""Unit + randomized tests for the dynamic distance maps."""

import random

import pytest

from repro.core.distance import DistanceMap, induced_vertices
from repro.graph.digraph import DynamicDiGraph
from tests.conftest import make_random_graph


def chain(n):
    return DynamicDiGraph([(i, i + 1) for i in range(n - 1)])


class TestBuild:
    def test_bfs_distances(self):
        g = chain(6)
        d = DistanceMap(g, 0, horizon=10)
        assert [d.get(i) for i in range(6)] == [0, 1, 2, 3, 4, 5]

    def test_horizon_cap(self):
        g = chain(6)
        d = DistanceMap(g, 0, horizon=3)
        assert d.get(3) == 3
        assert d.get(4) == d.far == 4
        assert d.get(5) == d.far

    def test_missing_source(self):
        g = chain(3)
        d = DistanceMap(g, 99, horizon=5)
        assert d.get(99) == 0
        assert d.get(0) == d.far

    def test_reverse_view_gives_dist_to_target(self):
        g = chain(4)
        d = DistanceMap(g.reverse_view(), 3, horizon=5)
        assert d.get(0) == 3
        assert d.get(3) == 0

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            DistanceMap(chain(2), 0, horizon=-1)

    def test_contains_and_len(self):
        d = DistanceMap(chain(3), 0, horizon=5)
        assert 2 in d
        assert len(d) == 3


class TestRelaxInsert:
    def test_shortcut_relaxes_suffix(self):
        g = chain(6)
        d = DistanceMap(g, 0, horizon=10)
        g.add_edge(0, 4)
        changed = d.relax_insert(0, 4)
        assert changed[4] == (4, 1)
        assert changed[5] == (5, 2)
        assert d.is_consistent()

    def test_irrelevant_insert_changes_nothing(self):
        g = chain(4)
        d = DistanceMap(g, 0, horizon=10)
        g.add_edge(3, 1)  # backward edge: no shorter path to anything
        assert d.relax_insert(3, 1) == {}
        assert d.is_consistent()

    def test_insert_reaching_far_vertex(self):
        g = DynamicDiGraph([(0, 1)], vertices=[2])
        d = DistanceMap(g, 0, horizon=5)
        g.add_edge(1, 2)
        changed = d.relax_insert(1, 2)
        assert changed[2] == (d.far, 2)

    def test_insert_beyond_horizon_ignored(self):
        g = chain(4)  # 0..3
        d = DistanceMap(g, 0, horizon=2)
        g.add_edge(3, 0)  # source side is far; nothing can improve
        g.add_edge(2, 3)
        assert d.relax_insert(2, 3) == {}  # 2 is at the horizon already

    def test_self_loop_noop(self):
        g = chain(3)
        d = DistanceMap(g, 0, horizon=5)
        g.add_edge(1, 1)
        assert d.relax_insert(1, 1) == {}


class TestTightenDelete:
    def test_delete_tree_edge_increases(self):
        g = chain(5)
        d = DistanceMap(g, 0, horizon=10)
        g.remove_edge(1, 2)
        changed = d.tighten_delete(1, 2)
        assert changed[2] == (2, d.far)
        assert changed[4] == (4, d.far)
        assert d.is_consistent()

    def test_delete_with_alternative_parent(self):
        g = chain(4)
        g.add_edge(0, 2)  # alternative route to 2 of the same length? no: shorter
        d = DistanceMap(g, 0, horizon=10)
        g.remove_edge(1, 2)
        d.tighten_delete(1, 2)
        assert d.get(2) == 1  # via the 0->2 edge
        assert d.is_consistent()

    def test_delete_non_tree_edge_noop(self):
        g = chain(4)
        g.add_edge(0, 3)
        d = DistanceMap(g, 0, horizon=10)
        assert d.get(3) == 1
        g.remove_edge(2, 3)  # not on any shortest path
        assert d.tighten_delete(2, 3) == {}
        assert d.is_consistent()

    def test_delete_in_cycle(self):
        # tightened vertices forming a loop: the paper's "worse case"
        g = DynamicDiGraph([(0, 1), (1, 2), (2, 3), (3, 2)])
        d = DistanceMap(g, 0, horizon=10)
        g.remove_edge(1, 2)
        d.tighten_delete(1, 2)
        assert d.get(2) == d.far
        assert d.get(3) == d.far
        assert d.is_consistent()

    def test_partial_increase_within_horizon(self):
        g = DynamicDiGraph([(0, 1), (1, 2), (0, 3), (3, 4), (4, 2)])
        d = DistanceMap(g, 0, horizon=10)
        g.remove_edge(1, 2)
        changed = d.tighten_delete(1, 2)
        assert changed[2] == (2, 3)  # reroute via 3, 4
        assert d.is_consistent()


class TestRandomizedMaintenance:
    def test_long_update_streams_stay_consistent(self):
        rng = random.Random(42)
        for _ in range(60):
            g = make_random_graph(rng, n_lo=4, n_hi=10, max_edges=20)
            source = rng.choice(list(g.vertices()))
            horizon = rng.randint(1, 6)
            d = DistanceMap(g, source, horizon=horizon)
            for _ in range(40):
                u, v = rng.sample(list(g.vertices()), 2)
                if g.has_edge(u, v):
                    g.remove_edge(u, v)
                    d.tighten_delete(u, v)
                else:
                    g.add_edge(u, v)
                    d.relax_insert(u, v)
                assert d.is_consistent()

    def test_changed_reports_are_exact(self):
        rng = random.Random(43)
        for _ in range(40):
            g = make_random_graph(rng, n_lo=4, n_hi=8, max_edges=14)
            source = rng.choice(list(g.vertices()))
            d = DistanceMap(g, source, horizon=5)
            before = {v: d.get(v) for v in g.vertices()}
            u, v = rng.sample(list(g.vertices()), 2)
            if g.has_edge(u, v):
                g.remove_edge(u, v)
                changed = d.tighten_delete(u, v)
            else:
                g.add_edge(u, v)
                changed = d.relax_insert(u, v)
            after = {w: d.get(w) for w in g.vertices()}
            expected = {
                w: (before[w], after[w])
                for w in g.vertices()
                if before[w] != after[w]
            }
            assert changed == expected


class TestInducedVertices:
    def test_theorem4_set(self):
        g = DynamicDiGraph([(0, 1), (1, 2), (2, 3), (0, 9)])
        ds = DistanceMap(g, 0, horizon=3)
        dt = DistanceMap(g.reverse_view(), 3, horizon=3)
        sub = induced_vertices(ds, dt, 3)
        assert sub == {0, 1, 2, 3}  # vertex 9 cannot reach t

    def test_empty_when_disconnected(self):
        g = DynamicDiGraph([(0, 1)], vertices=[5])
        ds = DistanceMap(g, 0, horizon=4)
        dt = DistanceMap(g.reverse_view(), 5, horizon=4)
        assert induced_vertices(ds, dt, 4) == set()
