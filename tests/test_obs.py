"""Unit tests for :mod:`repro.obs` — metrics, spans, and reporting."""

import threading

import pytest

from repro import obs
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    prometheus_name,
)
from repro.obs.spans import NOOP_SPAN, SPAN_SUFFIX


@pytest.fixture(autouse=True)
def _isolated_obs():
    """Every test starts disabled with an empty registry."""
    previous = obs.set_enabled(False)
    obs.reset()
    yield
    obs.set_enabled(previous)
    obs.reset()


# ---------------------------------------------------------------------------
# Metric primitives
# ---------------------------------------------------------------------------


def test_counter_increments_and_rejects_negative():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_set_inc_dec():
    gauge = Gauge("g")
    gauge.set(2.5)
    gauge.inc(1.5)
    gauge.dec(1.0)
    assert gauge.value == pytest.approx(3.0)


def test_histogram_aggregates():
    hist = Histogram("h")
    for v in (1.0, 2.0, 3.0, 4.0):
        hist.observe(v)
    assert hist.count == 4
    assert hist.total == pytest.approx(10.0)
    assert hist.mean == pytest.approx(2.5)
    assert hist.minimum == 1.0
    assert hist.maximum == 4.0


def test_histogram_nearest_rank_quantiles():
    hist = Histogram("h")
    for v in range(1, 101):  # 1..100
        hist.observe(float(v))
    assert hist.quantile(0.50) == 50.0
    assert hist.quantile(0.95) == 95.0
    assert hist.quantile(0.99) == 99.0
    assert hist.quantile(0.0) == 1.0
    assert hist.quantile(1.0) == 100.0
    p = hist.percentiles()
    assert set(p) == {"p50", "p95", "p99"}


def test_histogram_reservoir_is_bounded():
    hist = Histogram("h", reservoir=16)
    for v in range(1000):
        hist.observe(float(v))
    assert hist.count == 1000  # running aggregates see everything
    assert hist.total == pytest.approx(sum(range(1000)))
    # quantiles come from the (recent) reservoir window
    assert hist.quantile(0.5) >= 984.0


def test_histogram_quantile_empty_and_bad_q():
    hist = Histogram("h")
    assert hist.quantile(0.5) == 0.0
    hist.observe(1.0)
    with pytest.raises(ValueError):
        hist.quantile(1.5)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def test_registry_get_or_create_and_kind_mismatch():
    registry = MetricsRegistry()
    counter = registry.counter("x")
    assert registry.counter("x") is counter
    with pytest.raises(TypeError):
        registry.gauge("x")
    with pytest.raises(TypeError):
        registry.histogram("x")
    assert len(registry) == 1
    assert registry.get("x") is counter
    assert registry.get("missing") is None


def test_registry_reset_clears_metrics():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.histogram("b").observe(1.0)
    registry.reset()
    assert len(registry) == 0
    assert registry.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {}
    }


def test_registry_snapshot_shape():
    registry = MetricsRegistry()
    registry.counter("c").inc(3)
    registry.gauge("g").set(1.5)
    registry.histogram("h").observe(0.25)
    snap = registry.snapshot()
    assert snap["counters"] == {"c": 3}
    assert snap["gauges"] == {"g": 1.5}
    hist = snap["histograms"]["h"]
    assert hist["count"] == 1
    assert hist["total"] == pytest.approx(0.25)
    assert "p95" in hist


# ---------------------------------------------------------------------------
# Facade: enable/disable, spans, no-op mode
# ---------------------------------------------------------------------------


def test_disabled_mode_is_a_complete_noop():
    assert not obs.enabled()
    obs.incr("nope")
    obs.set_gauge("nope.g", 1.0)
    obs.observe("nope.h", 2.0)
    with obs.span("nope.span"):
        pass
    snap = obs.snapshot()
    assert snap["counters"] == {}
    assert snap["gauges"] == {}
    assert snap["histograms"] == {}


def test_disabled_span_is_the_shared_singleton():
    assert obs.span("a") is NOOP_SPAN
    assert obs.span("b") is NOOP_SPAN


def test_set_enabled_returns_previous():
    assert obs.set_enabled(True) is False
    assert obs.set_enabled(False) is True
    assert not obs.enabled()


def test_enabled_span_records_a_seconds_histogram():
    obs.enable()
    with obs.span("stage.work"):
        pass
    snap = obs.snapshot()
    name = "stage.work" + SPAN_SUFFIX
    assert name in snap["histograms"]
    assert snap["histograms"][name]["count"] == 1
    assert snap["histograms"][name]["total"] >= 0.0


def test_enabled_counters_and_gauges_record():
    obs.enable()
    obs.incr("hits", 2)
    obs.incr("hits")
    obs.set_gauge("depth", 7)
    snap = obs.snapshot()
    assert snap["counters"]["hits"] == 3
    assert snap["gauges"]["depth"] == 7
    assert snap["enabled"] is True


def test_span_reentrant_timing_accumulates():
    obs.enable()
    for _ in range(3):
        with obs.span("loop"):
            pass
    name = "loop" + SPAN_SUFFIX
    assert obs.registry().histogram(name).count == 3


# ---------------------------------------------------------------------------
# Thread safety
# ---------------------------------------------------------------------------


def test_concurrent_increments_are_exact():
    obs.enable()
    threads = 8
    per_thread = 2000
    barrier = threading.Barrier(threads)

    def work():
        barrier.wait()
        for _ in range(per_thread):
            obs.incr("concurrent.count")
            obs.observe("concurrent.hist", 1.0)

    workers = [threading.Thread(target=work) for _ in range(threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    snap = obs.snapshot()
    assert snap["counters"]["concurrent.count"] == threads * per_thread
    hist = snap["histograms"]["concurrent.hist"]
    assert hist["count"] == threads * per_thread
    assert hist["total"] == pytest.approx(threads * per_thread)


# ---------------------------------------------------------------------------
# Prometheus rendering
# ---------------------------------------------------------------------------


def test_prometheus_name_sanitizes():
    assert prometheus_name("construction.build.seconds") == (
        "construction_build_seconds"
    )
    assert prometheus_name("join.1x2.paths") == "join_1x2_paths"


def test_render_prometheus_exposition():
    obs.enable()
    obs.incr("cache.hits", 5)
    obs.set_gauge("queue.depth", 2)
    obs.observe("op.seconds", 0.5)
    text = obs.render_prometheus()
    assert "# TYPE cache_hits counter" in text
    assert "cache_hits 5" in text
    assert "# TYPE queue_depth gauge" in text
    assert "# TYPE op_seconds summary" in text
    assert 'op_seconds{quantile="0.5"} 0.5' in text
    assert "op_seconds_sum 0.5" in text
    assert "op_seconds_count 1" in text


def test_escape_label_value_covers_the_reserved_characters():
    # Regression: label values went into the exposition unescaped, so a
    # backslash, quote, or newline produced unparseable (or split)
    # sample lines.  The text format mandates \\, \", and \n escapes.
    from repro.obs.metrics import escape_label_value

    assert escape_label_value("plain-0.95") == "plain-0.95"
    assert escape_label_value("back\\slash") == "back\\\\slash"
    assert escape_label_value('say "hi"') == 'say \\"hi\\"'
    assert escape_label_value("line\nbreak") == "line\\nbreak"
    # backslash escaping must run first or the other escapes double up
    assert escape_label_value('\\"\n') == '\\\\\\"\\n'
    # escaped output is always a single line
    assert "\n" not in escape_label_value("a\nb\nc")


def test_render_prometheus_label_values_stay_single_line():
    obs.enable()
    obs.observe("op.seconds", 0.5)
    for line in obs.render_prometheus().splitlines():
        if "{" in line:
            # one sample per line: "name{labels} value"
            assert line.count("{") == 1 and line.count("}") == 1
            labels = line[line.index("{") + 1:line.index("}")]
            assert labels.count('"') % 2 == 0


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


def test_stage_rows_selects_and_sorts_span_histograms():
    obs.enable()
    obs.observe("fast.seconds", 0.1)
    obs.observe("slow.seconds", 5.0)
    obs.observe("not_a_span", 99.0)  # no .seconds suffix: excluded
    rows = obs.stage_rows(obs.snapshot())
    stages = [stage for stage, _ in rows]
    assert stages == ["slow", "fast"]


def test_render_profile_contains_stages_and_counters():
    obs.enable()
    obs.observe("construction.build.seconds", 0.25)
    obs.incr("construction.builds", 2)
    text = obs.render_profile(obs.snapshot(), title="unit test")
    assert "unit test" in text
    assert "construction.build" in text
    assert "construction.builds" in text
    assert "p95" in text


def test_render_profile_empty_snapshot():
    text = obs.render_profile(obs.snapshot())
    assert isinstance(text, str)
