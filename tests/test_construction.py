"""Tests for the bidirectional index construction (Algorithm 2)."""

import random

import pytest

from repro.baselines.bruteforce import path_set
from repro.core.construction import build_index
from repro.core.distance import DistanceMap
from repro.core.paths import hops, is_simple
from repro.core.plan import balanced_plan
from repro.graph.digraph import DynamicDiGraph
from tests.conftest import make_random_graph, random_query


class TestBasics:
    def test_rejects_equal_endpoints(self):
        with pytest.raises(ValueError):
            build_index(DynamicDiGraph([(0, 1)]), 0, 0, 3)

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            build_index(DynamicDiGraph([(0, 1)]), 0, 1, -1)

    def test_k0_and_k1_have_empty_plan(self):
        g = DynamicDiGraph([(0, 1)])
        for k in (0, 1):
            result = build_index(g, 0, 1, k)
            assert result.index.plan.pairs == ()
        assert build_index(g, 0, 1, 1).index.direct_edge is True
        assert build_index(g, 0, 1, 0).index.direct_edge is False

    def test_plan_covers_all_lengths(self):
        g = make_random_graph(random.Random(1))
        result = build_index(g, 0, 1, 6)
        assert sorted(i + j for i, j in result.index.plan) == list(range(2, 7))
        assert result.index.plan.l + result.index.plan.r == 6

    def test_stats_populated(self):
        g = DynamicDiGraph([(0, 1), (1, 2)])
        result = build_index(g, 0, 2, 4)
        assert result.stats.left_levels + result.stats.right_levels == 4
        assert result.stats.induced_size == 3
        assert result.stats.prep_seconds >= 0


class TestStoredInvariant:
    """Every stored partial path must satisfy the index invariant, and
    every admissible partial path must be stored."""

    def _check(self, graph, s, t, k):
        result = build_index(graph, s, t, k)
        index, dist_s, dist_t = result.index, result.dist_s, result.dist_t
        l, r = index.plan.l, index.plan.r

        for length, vertex, path in index.left.entries():
            assert path[0] == s and path[-1] == vertex
            assert hops(path) == length <= l
            assert is_simple(path) and t not in path
            assert length + dist_t.get(vertex) <= k

        for length, vertex, path in index.right.entries():
            assert path[0] == vertex and path[-1] == t
            assert hops(path) == length <= r
            assert is_simple(path) and s not in path
            assert length + dist_s.get(vertex) <= k

        # completeness: brute-force all admissible left partials
        expected_left = set()
        stack = [(s,)]
        while stack:
            p = stack.pop()
            if 1 <= hops(p) <= l and hops(p) + dist_t.get(p[-1]) <= k:
                expected_left.add(p)
            if hops(p) < l:
                for y in graph.out_neighbors(p[-1]):
                    if y != t and y not in p:
                        stack.append(p + (y,))
        stored_left = set(index.left.paths())
        assert stored_left == expected_left

    def test_on_fixed_graph(self, paper_figure2):
        self._check(paper_figure2, 0, 9, 4)

    def test_on_random_graphs(self):
        rng = random.Random(9)
        for _ in range(40):
            g = make_random_graph(rng)
            s, t, k = random_query(rng, g)
            self._check(g, s, t, k)


class TestForcedPlan:
    def test_forced_plan_is_respected(self):
        g = make_random_graph(random.Random(3))
        plan = balanced_plan(5)
        result = build_index(g, 0, 1, 5, forced_plan=plan)
        assert result.index.plan.pairs == plan.pairs

    def test_forced_plan_k_mismatch(self):
        g = DynamicDiGraph([(0, 1)])
        with pytest.raises(ValueError):
            build_index(g, 0, 1, 4, forced_plan=balanced_plan(3))

    def test_forced_and_dynamic_enumerate_identically(self):
        from repro.core.enumeration import enumerate_full

        rng = random.Random(4)
        for _ in range(20):
            g = make_random_graph(rng)
            s, t, k = random_query(rng, g, k_hi=5)
            if k < 2:
                continue
            dynamic = build_index(g, s, t, k)
            forced = build_index(g, s, t, k, forced_plan=balanced_plan(k))
            assert set(enumerate_full(dynamic.index)) == set(
                enumerate_full(forced.index)
            )


class TestDistancePruning:
    def test_unjoinable_partial_not_stored(self):
        # the paper's Fig. 2 remark: {s, v2, v1} is skipped because v1 is
        # 3 hops from t while only 2 hops of budget remain
        g = DynamicDiGraph(
            [(0, 2), (2, 1), (1, 3), (3, 4), (4, 5), (0, 9), (9, 5)]
        )
        result = build_index(g, 0, 5, 4)
        assert not result.index.has_left((0, 2, 1))

    def test_direct_edge_not_in_partials(self):
        g = DynamicDiGraph([(0, 1), (0, 2), (2, 1)])
        result = build_index(g, 0, 1, 4)
        assert result.index.direct_edge is True
        for path in result.index.left.paths():
            assert path != (0, 1)


class TestDynamicCut:
    def test_skewed_graph_prefers_cheap_side(self):
        # s fans out to many vertices; t has a single chain into it.
        edges = [(0, i) for i in range(1, 30)]
        edges += [(i, 30) for i in range(1, 30)]
        edges += [(30, 31), (31, 32), (32, 33)]
        g = DynamicDiGraph(edges)
        result = build_index(g, 0, 33, 6)
        # the right side (into t) is far cheaper, so it should be deeper
        assert result.index.plan.r > result.index.plan.l


def test_full_result_matches_bruteforce_through_index():
    from repro.core.enumeration import enumerate_full

    rng = random.Random(5)
    for _ in range(60):
        g = make_random_graph(rng)
        s, t, k = random_query(rng, g)
        result = build_index(g, s, t, k)
        assert set(enumerate_full(result.index)) == path_set(g, s, t, k)


def test_distance_maps_match_fresh_bfs():
    rng = random.Random(6)
    g = make_random_graph(rng)
    result = build_index(g, 0, 1, 5)
    assert result.dist_s.is_consistent()
    assert result.dist_t.is_consistent()
    fresh = DistanceMap(g, 0, horizon=5)
    assert {v: result.dist_s.get(v) for v in g.vertices()} == {
        v: fresh.get(v) for v in g.vertices()
    }
