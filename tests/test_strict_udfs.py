"""Demonstrating and bounding the paper-literal UDFS gap (DESIGN.md §3)."""

import random

from repro.core.construction import build_index
from repro.core.maintenance import IndexMaintainer
from repro.core.maintenance_strict import StrictUdfsMaintainer
from repro.graph.digraph import DynamicDiGraph
from tests.conftest import make_random_graph, random_query


def build_pair(graph, s, t, k):
    """Two maintainers over independent copies of the same state."""
    strict_graph = graph.copy()
    default_graph = graph.copy()
    sb = build_index(strict_graph, s, t, k)
    db = build_index(default_graph, s, t, k)
    strict = StrictUdfsMaintainer(strict_graph, sb.index, sb.dist_s, sb.dist_t)
    default = IndexMaintainer(default_graph, db.index, db.dist_s, db.dist_t)
    return strict, default


def index_content(maintainer):
    return (
        maintainer.index.left.as_dict(),
        maintainer.index.right.as_dict(),
    )


def counterexample():
    """The DESIGN.md §3 scenario: a pre-existing admissible RP path at a
    relaxed vertex whose extension to a second relaxed vertex becomes
    admissible only through the relaxation."""
    edges = [
        (0, 10), (10, 11), (11, 12), (12, 13), (13, 14), (14, 1),
        (1, 2),
        (2, 3), (3, 4), (4, 5), (5, 9),
        (0, 20), (20, 21), (21, 22), (22, 2),
        (0, 30),
    ]
    return DynamicDiGraph(edges), 0, 9, 8


class TestStrictGap:
    def test_strict_misses_the_counterexample_extension(self):
        graph, s, t, k = counterexample()
        strict, default = build_pair(graph, s, t, k)
        strict.insert_edge(30, 1)
        default.insert_edge(30, 1)
        # the complete repair equals a fresh build ...
        fresh = build_index(default.graph, s, t, k, forced_plan=default.index.plan)
        assert index_content(default) == (
            fresh.index.left.as_dict(), fresh.index.right.as_dict()
        )
        # ... the strict (paper-literal) repair does not: it misses
        # partial paths, demonstrating the pseudocode gap
        strict_left, strict_right = index_content(strict)
        complete_left, complete_right = index_content(default)
        assert (strict_left, strict_right) != (complete_left, complete_right)
        missing = []
        for side_strict, side_full in (
            (strict_left, complete_left), (strict_right, complete_right)
        ):
            for length, bucket in side_full.items():
                for vertex, paths in bucket.items():
                    missing.extend(
                        paths - side_strict.get(length, {}).get(vertex, set())
                    )
        assert missing, "expected the strict variant to miss partial paths"

    def test_strict_never_adds_wrong_paths(self):
        """The gap is one-sided: strict may MISS paths, never invent them."""
        rng = random.Random(61)
        for _ in range(40):
            graph = make_random_graph(rng, max_edges=12)
            s, t, k = random_query(rng, graph)
            strict, _ = build_pair(graph, s, t, k)
            for _ in range(6):
                u, v = rng.sample(list(graph.vertices()), 2)
                if strict.graph.has_edge(u, v):
                    continue
                strict.insert_edge(u, v)
            fresh = build_index(
                strict.graph, s, t, k, forced_plan=strict.index.plan
            )
            for side in ("left", "right"):
                got = getattr(strict.index, side).as_dict()
                want = getattr(fresh.index, side).as_dict()
                for length, bucket in got.items():
                    for vertex, paths in bucket.items():
                        assert paths <= want.get(length, {}).get(
                            vertex, set()
                        ), f"strict invented paths at {side}_{length}({vertex})"

    def test_divergence_is_common_on_insertion_streams(self):
        """Quantify the gap: under repeated insertions the strict repair
        diverges from the complete index on a large fraction of random
        streams (measured ~50% at k >= 4), not just on constructed
        corner cases.  Missing partial paths are frequently unjoinable
        *at the moment they go missing* — which is why enumeration
        output can look right for a while — but they are exactly the
        entries later updates must join against, so the index drift is
        a real correctness bug of the literal pseudocode."""
        rng = random.Random(62)
        trials = diverged = 0
        for _ in range(120):
            graph = make_random_graph(rng, n_lo=5, n_hi=8, max_edges=10)
            s, t, k = random_query(rng, graph, k_hi=6)
            if k < 4:
                continue
            strict, default = build_pair(graph, s, t, k)
            for _ in range(8):
                u, v = rng.sample(list(graph.vertices()), 2)
                if strict.graph.has_edge(u, v):
                    continue
                strict.insert_edge(u, v)
                default.insert_edge(u, v)
            trials += 1
            if index_content(strict) != index_content(default):
                diverged += 1
        assert trials >= 50
        assert diverged > 0, "the gap should show up on random streams"
