"""End-to-end integration scenarios mirroring the paper's applications."""

import random

from repro.baselines.bruteforce import path_set
from repro.core.enumerator import CpeEnumerator
from repro.graph import datasets
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import community_graph
from repro.workloads.queries import hot_queries
from repro.workloads.runner import cpe_factory, run_dynamic
from repro.workloads.updates import relevant_update_stream


def test_fraud_monitoring_scenario():
    """Financial-crimes use case: monitor a suspect pair as transactions
    stream in, maintaining a risk score from the live k-st path set."""
    g = community_graph(6, 12, 0.25, 40, seed=5)
    rng = random.Random(6)
    s, t = 0, 40
    cpe = CpeEnumerator(g, s, t, 5)
    risk = sum(1.0 / (len(p) - 1) for p in cpe.startup())
    for _ in range(60):
        u, v = rng.sample(range(g.num_vertices), 2)
        if g.has_edge(u, v):
            result = cpe.delete_edge(u, v)
            risk -= sum(1.0 / (len(p) - 1) for p in result.paths)
        else:
            result = cpe.insert_edge(u, v)
            risk += sum(1.0 / (len(p) - 1) for p in result.paths)
    expected = sum(1.0 / (len(p) - 1) for p in path_set(g, s, t, 5))
    assert abs(risk - expected) < 1e-9


def test_dataset_workload_end_to_end():
    """A full workload on a dataset analogue: queries, updates, runner."""
    graph = datasets.load("RT", 0.2)
    queries = hot_queries(graph, 2, 5, top_fraction=0.10, seed=1)
    for qi, query in enumerate(queries):
        updates = relevant_update_stream(
            graph, query.s, query.t, query.k, 5, 5, seed=qi
        )
        run = run_dynamic(cpe_factory, graph, query, updates)
        assert len(run.update_seconds) == len(updates)
        # replaying the stream must land on the brute-force result
        replay = graph.copy()
        replay.apply_updates(updates)
        cpe = CpeEnumerator(graph.copy(), query.s, query.t, query.k)
        for upd in updates:
            cpe.apply(upd)
        assert set(cpe.startup()) == path_set(
            replay, query.s, query.t, query.k
        )


def test_communication_network_resilience_scenario():
    """Terminal-reliability use case: count disjoint-ish routes while
    links flap, verifying the maintained count matches recomputation."""
    rng = random.Random(9)
    g = DynamicDiGraph()
    n = 30
    for i in range(n):
        g.add_edge(i, (i + 1) % n)       # ring
        g.add_edge(i, (i + 5) % n)       # chords
    s, t = 0, 7
    cpe = CpeEnumerator(g, s, t, 6)
    count = len(cpe.startup())
    for _ in range(40):
        u, v = rng.sample(range(n), 2)
        if g.has_edge(u, v):
            count -= len(cpe.delete_edge(u, v).paths)
        else:
            count += len(cpe.insert_edge(u, v).paths)
    assert count == len(path_set(g, s, t, 6))
    assert count == cpe.count_paths()
