"""Tests for :mod:`repro.analysis` — the project-specific lint engine.

Each rule gets a fixture triple: a snippet it must flag (with the rule
id and line asserted), a clean snippet it must pass, and the flagged
snippet again with a ``# repro: noqa[RULE]`` suppression on the hit
line.  On top of that the repo itself must lint clean — ``repro lint
src/`` is part of CI, so a regression here is a regression there.
"""

import json
import re
import textwrap
from pathlib import Path

import pytest

from repro.analysis import all_rules, render_json, render_text, run_lint
from repro.analysis.sources import parse_noqa

ROOT = Path(__file__).parent.parent

# ----------------------------------------------------------------------
# Rule fixtures: code -> (bad source, expected hit line, clean source)
# ----------------------------------------------------------------------
RULE_FIXTURES = {
    "R001": (
        textwrap.dedent(
            """\
            def corrupt(index, path):
                index.add_left(1, "v", path)
            """
        ),
        2,
        textwrap.dedent(
            """\
            def read(index):
                return index.count_left(1, 2)
            """
        ),
    ),
    "R002": (
        textwrap.dedent(
            """\
            def peek(cpe):
                return cpe._dist_s
            """
        ),
        2,
        textwrap.dedent(
            """\
            class Box:
                def __init__(self):
                    self._value = 1

                def value(self):
                    return self._value
            """
        ),
    ),
    "R003": (
        textwrap.dedent(
            """\
            import time


            async def pause():
                time.sleep(1)
            """
        ),
        5,
        textwrap.dedent(
            """\
            import asyncio
            import time


            def pause():
                time.sleep(1)


            async def apause():
                await asyncio.sleep(1)
            """
        ),
    ),
    "R004": (
        textwrap.dedent(
            """\
            def order(xs):
                return list({x for x in xs})
            """
        ),
        2,
        textwrap.dedent(
            """\
            def order(xs):
                return sorted({x for x in xs})
            """
        ),
    ),
    "R005": (
        textwrap.dedent(
            """\
            def collect(item, acc=[]):
                acc.append(item)
                return acc
            """
        ),
        1,
        textwrap.dedent(
            """\
            def collect(item, acc=None):
                if acc is None:
                    acc = []
                acc.append(item)
                return acc
            """
        ),
    ),
    "R006": (
        "def helper():\n    return 1\n",
        1,
        'def helper():\n    return 1\n\n\n__all__ = ["helper"]\n',
    ),
    "R013": (
        textwrap.dedent(
            """\
            def leak(graph, uid, vid):
                graph._out_ids[uid].append(vid)
            """
        ),
        2,
        textwrap.dedent(
            """\
            def read(graph, u, v):
                graph.add_edge(u, v)
                return list(graph.out_neighbors(u))
            """
        ),
    ),
}


def lint_source(tmp_path, source, select=None, name="mod.py"):
    target = tmp_path / name
    target.write_text(source, encoding="utf-8")
    return run_lint([str(target)], select=select)


def suppress_line(source, line, rule):
    """Append ``# repro: noqa[rule]`` to the given 1-based line."""
    lines = source.splitlines()
    lines[line - 1] += f"  # repro: noqa[{rule}]"
    return "\n".join(lines) + "\n"


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_rule_flags_bad_fixture(rule, tmp_path):
    bad, line, _ = RULE_FIXTURES[rule]
    report = lint_source(tmp_path, bad, select=[rule])
    hits = report.for_rule(rule)
    assert hits, f"{rule} missed its fixture"
    assert hits[0].rule == rule
    assert hits[0].line == line
    assert hits[0].path.endswith("mod.py")


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_rule_passes_clean_fixture(rule, tmp_path):
    _, _, clean = RULE_FIXTURES[rule]
    report = lint_source(tmp_path, clean, select=[rule])
    assert report.findings == (), render_text(report)


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_rule_respects_noqa(rule, tmp_path):
    bad, line, _ = RULE_FIXTURES[rule]
    report = lint_source(tmp_path, suppress_line(bad, line, rule),
                         select=[rule])
    assert report.findings == (), render_text(report)


def test_bare_noqa_suppresses_every_rule(tmp_path):
    bad, line, _ = RULE_FIXTURES["R005"]
    lines = bad.splitlines()
    lines[line - 1] += "  # repro: noqa"
    report = lint_source(tmp_path, "\n".join(lines) + "\n", select=["R005"])
    assert report.findings == ()


def test_noqa_on_other_line_does_not_suppress(tmp_path):
    bad, line, _ = RULE_FIXTURES["R005"]
    report = lint_source(
        tmp_path, "# repro: noqa[R005]\n" + bad, select=["R005"]
    )
    assert report.for_rule("R005")


# ----------------------------------------------------------------------
# Rule-specific edge cases
# ----------------------------------------------------------------------
def test_r001_allows_the_maintenance_layer(tmp_path):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    bad, _, _ = RULE_FIXTURES["R001"]
    (pkg / "maintenance.py").write_text(bad, encoding="utf-8")
    report = run_lint([str(pkg / "maintenance.py")], select=["R001"])
    assert report.findings == (), "maintenance layer may mutate the index"


def test_r013_allows_the_owning_modules(tmp_path):
    bad, _, _ = RULE_FIXTURES["R013"]
    target = _scoped_module(tmp_path, "repro/graph", "digraph.py", bad)
    report = run_lint([str(target)], select=["R013"])
    assert report.findings == (), "the graph may write its own id plane"


def test_r013_flags_packed_level_writes(tmp_path):
    source = textwrap.dedent(
        """\
        def poke(level, i):
            level.masks[i] = 0
            level.flat_paths.clear()
            level.tails = None
        """
    )
    report = lint_source(tmp_path, source, select=["R013"])
    lines = [f.line for f in report.for_rule("R013")]
    assert lines == [2, 3, 4]


def _scoped_module(tmp_path, dotted_dir, filename, source):
    """Write ``source`` as a module inside a tmp package tree."""
    pkg = tmp_path
    for part in dotted_dir.split("/"):
        pkg = pkg / part
        pkg.mkdir(exist_ok=True)
        (pkg / "__init__.py").write_text("", encoding="utf-8")
    target = pkg / filename
    target.write_text(source, encoding="utf-8")
    return target


_R007_BAD = textwrap.dedent(
    """\
    def handle(op):
        print("handling", op)
    """
)


def test_r007_flags_print_in_service_layer(tmp_path):
    target = _scoped_module(tmp_path, "repro/service", "engine.py", _R007_BAD)
    report = run_lint([str(target)], select=["R007"])
    hits = report.for_rule("R007")
    assert hits and hits[0].line == 2
    assert "repro.obs.events" in hits[0].message


def test_r007_flags_logging_import_in_core_layer(tmp_path):
    source = "import logging\n\nlog = logging.getLogger(__name__)\n"
    target = _scoped_module(tmp_path, "repro/core", "maintenance.py", source)
    report = run_lint([str(target)], select=["R007"])
    hits = report.for_rule("R007")
    assert hits and hits[0].line == 1

    source = "from logging import getLogger\n"
    target = _scoped_module(tmp_path, "repro/core", "other.py", source)
    report = run_lint([str(target)], select=["R007"])
    assert report.for_rule("R007")


def test_r007_flags_print_in_parallel_layer(tmp_path):
    target = _scoped_module(tmp_path, "repro/parallel", "worker.py", _R007_BAD)
    report = run_lint([str(target)], select=["R007"])
    hits = report.for_rule("R007")
    assert hits and hits[0].line == 2
    assert "repro.obs.events" in hits[0].message


def test_r007_ignores_modules_outside_the_scoped_layers(tmp_path):
    for dotted in ("repro/cli_helpers", "repro/experiments", "other"):
        target = _scoped_module(tmp_path, dotted, "mod.py", _R007_BAD)
        report = run_lint([str(target)], select=["R007"])
        assert report.findings == (), f"{dotted} should be out of scope"


def test_r007_respects_noqa(tmp_path):
    source = suppress_line(_R007_BAD, 2, "R007")
    target = _scoped_module(tmp_path, "repro/service", "engine.py", source)
    report = run_lint([str(target)], select=["R007"])
    assert report.findings == ()


def test_r002_allows_same_class_private_access(tmp_path):
    source = textwrap.dedent(
        """\
        class Pair:
            def __init__(self):
                self._left = 0

            def __eq__(self, other):
                return self._left == other._left
        """
    )
    report = lint_source(tmp_path, source, select=["R002"])
    assert report.findings == ()


def test_r003_nested_sync_def_shields_its_body(tmp_path):
    source = textwrap.dedent(
        """\
        import time


        async def outer():
            def worker():
                time.sleep(1)
            return worker
        """
    )
    report = lint_source(tmp_path, source, select=["R003"])
    assert report.findings == ()


def test_r004_ignores_sorted_set(tmp_path):
    report = lint_source(
        tmp_path, "order = sorted({3, 1, 2})\n__all__ = ['order']\n"
    )
    assert report.findings == ()


def test_r006_flags_unbound_and_private_exports(tmp_path):
    source = '__all__ = ["missing", "_hidden"]\n_hidden = 1\n'
    report = lint_source(tmp_path, source, select=["R006"])
    messages = [f.message for f in report.findings]
    assert any("missing" in m for m in messages)
    assert any("_hidden" in m for m in messages)


def test_r006_exempts_private_modules(tmp_path):
    report = lint_source(
        tmp_path, "def helper():\n    return 1\n",
        select=["R006"], name="_internal.py",
    )
    assert report.findings == ()


# ----------------------------------------------------------------------
# Whole-program rules (R008-R012): fixture triples over package trees
# ----------------------------------------------------------------------
_R009_CONSTRUCTION = textwrap.dedent(
    """\
    def build_index(graph, s, t, k, stats=None, dist_s=None, dist_t=None):
        return object()


    __all__ = ["build_index"]
    """
)

_R011_DOCS = textwrap.dedent(
    """\
    # API

    Ops: `query` (`s`, `t`, `k`) and `watch` (`s`, `t`).  Any request
    may carry a `corr_id` string.
    """
)

_R012_DOCS = textwrap.dedent(
    """\
    # Observability

    | metric | kind |
    |---|---|
    | `service.requests.<op>` | counter |
    | `service.cache.hits` / `misses` | counter |
    """
)

#: code -> {"bad": files, "hit": (relpath, line), "clean": files}
PROGRAM_FIXTURES = {
    "R008": {
        "bad": {
            "repro/core/work.py": textwrap.dedent(
                """\
                import time


                def stamp():
                    return time.time()
                """
            ),
        },
        "hit": ("repro/core/work.py", 5),
        "clean": {
            "repro/core/work.py": textwrap.dedent(
                """\
                import random
                import time


                def stamp():
                    return time.perf_counter()


                def draw(seed):
                    return random.Random(seed).random()
                """
            ),
        },
    },
    "R009": {
        "bad": {
            "repro/core/construction.py": _R009_CONSTRUCTION,
            "repro/batching/shared.py": textwrap.dedent(
                """\
                from repro.core.construction import build_index


                def make_master(graph, hub, k):
                    return object()


                def drive(graph, pairs, k):
                    master = make_master(graph, 7, k)
                    return [
                        build_index(graph, s, t, k, dist_s=master)
                        for s, t in pairs
                    ]
                """
            ),
        },
        "hit": ("repro/batching/shared.py", 11),
        "clean": {
            "repro/core/construction.py": _R009_CONSTRUCTION,
            "repro/batching/shared.py": textwrap.dedent(
                """\
                from repro.core.construction import build_index


                def make_master(graph, hub, k):
                    return object()


                def drive(graph, pairs, k, use_s):
                    master = make_master(graph, 7, k)
                    return [
                        build_index(
                            graph, s, t, k,
                            dist_s=master.clone() if use_s else None,
                        )
                        for s, t in pairs
                    ]
                """
            ),
        },
    },
    "R010": {
        "bad": {
            "repro/service/state.py": textwrap.dedent(
                """\
                import asyncio


                class Tracker:
                    def __init__(self):
                        self._count = 0
                        self._lock = asyncio.Lock()

                    async def admit(self):
                        self._count += 1

                    async def release(self):
                        async with self._lock:
                            self._count -= 1
                """
            ),
        },
        "hit": ("repro/service/state.py", 10),
        "clean": {
            "repro/service/state.py": textwrap.dedent(
                """\
                import asyncio


                class Tracker:
                    def __init__(self):
                        self._count = 0
                        self._lock = asyncio.Lock()

                    async def admit(self):
                        async with self._lock:
                            self._count += 1

                    async def release(self):
                        async with self._lock:
                            self._count -= 1
                """
            ),
        },
    },
    "R011": {
        "bad": {
            "repro/service/protocol.py": 'OPS = ("query", "watch")\n',
            "repro/service/engine.py": textwrap.dedent(
                """\
                class Engine:
                    def op_query(self, s, t, k):
                        return {}
                """
            ),
        },
        "hit": ("repro/service/protocol.py", 1),
        "clean": {
            "repro/service/protocol.py": 'OPS = ("query", "watch")\n',
            "repro/service/engine.py": textwrap.dedent(
                """\
                class Engine:
                    def op_query(self, s, t, k):
                        return {}

                    def op_watch(self, s, t):
                        return {}
                """
            ),
        },
    },
    "R012": {
        "bad": {
            "pyproject.toml": "[project]\nname = 'fixture'\n",
            "docs/OBSERVABILITY.md": _R012_DOCS,
            "repro/service/metrics.py": textwrap.dedent(
                """\
                from repro import obs


                def work(op):
                    obs.incr("service.cache.hitz")
                """
            ),
        },
        "hit": ("repro/service/metrics.py", 5),
        "clean": {
            "pyproject.toml": "[project]\nname = 'fixture'\n",
            "docs/OBSERVABILITY.md": _R012_DOCS,
            "repro/service/metrics.py": textwrap.dedent(
                """\
                from repro import obs


                def work(op):
                    obs.incr("service.cache.hits")
                    obs.incr(f"service.requests.{op}")
                """
            ),
        },
    },
}


def _write_tree(tmp_path, files):
    """Write a fixture tree, adding __init__.py along .py package paths."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        if relpath.endswith(".py"):
            current = target.parent
            while current != tmp_path:
                init = current / "__init__.py"
                if not init.exists():
                    init.write_text("", encoding="utf-8")
                current = current.parent
        target.write_text(source, encoding="utf-8")


def lint_tree(tmp_path, files, select=None):
    _write_tree(tmp_path, files)
    return run_lint([str(tmp_path)], select=select)


@pytest.mark.parametrize("rule", sorted(PROGRAM_FIXTURES))
def test_program_rule_flags_bad_fixture(rule, tmp_path):
    fixture = PROGRAM_FIXTURES[rule]
    report = lint_tree(tmp_path, fixture["bad"], select=[rule])
    hits = report.for_rule(rule)
    relpath, line = fixture["hit"]
    assert hits, f"{rule} missed its fixture"
    assert any(
        hit.path.endswith(relpath.replace("/", str(Path("/"))))
        and hit.line == line
        for hit in hits
    ), render_text(report)


@pytest.mark.parametrize("rule", sorted(PROGRAM_FIXTURES))
def test_program_rule_passes_clean_fixture(rule, tmp_path):
    fixture = PROGRAM_FIXTURES[rule]
    report = lint_tree(tmp_path, fixture["clean"], select=[rule])
    assert report.findings == (), render_text(report)


@pytest.mark.parametrize("rule", sorted(PROGRAM_FIXTURES))
def test_program_rule_respects_noqa(rule, tmp_path):
    fixture = PROGRAM_FIXTURES[rule]
    relpath, line = fixture["hit"]
    files = dict(fixture["bad"])
    files[relpath] = suppress_line(files[relpath], line, rule)
    report = lint_tree(tmp_path, files, select=[rule])
    assert report.for_rule(rule) == [], render_text(report)


def test_r008_flags_source_reached_through_call_graph(tmp_path):
    files = {
        "repro/util.py": textwrap.dedent(
            """\
            import uuid


            def tag():
                return str(uuid.uuid4())
            """
        ),
        "repro/batching/uses.py": textwrap.dedent(
            """\
            from repro.util import tag


            def go():
                return tag()
            """
        ),
    }
    report = lint_tree(tmp_path, files, select=["R008"])
    hits = report.for_rule("R008")
    assert len(hits) == 1 and hits[0].path.endswith("util.py")
    assert "reachable from" in hits[0].message


def test_r008_ignores_unreached_out_of_scope_code(tmp_path):
    files = {
        "repro/util.py": (
            "import uuid\n\n\ndef tag():\n    return str(uuid.uuid4())\n"
        ),
    }
    report = lint_tree(tmp_path, files, select=["R008"])
    assert report.findings == ()


def test_r009_direct_shared_master_flagged(tmp_path):
    files = {
        "repro/core/construction.py": _R009_CONSTRUCTION,
        "repro/batching/direct.py": textwrap.dedent(
            """\
            from repro.core.construction import build_index


            def run(graph, master, k):
                first = build_index(graph, 0, 1, k, dist_s=master.clone())
                second = build_index(graph, 2, 3, k, dist_s=master)
                return first, second
            """
        ),
    }
    report = lint_tree(tmp_path, files, select=["R009"])
    hits = report.for_rule("R009")
    # ``master`` is a parameter with no visible callers, so only the
    # call-graph walk decides; the raw second call still must resolve
    # through drive-free classification: the clone() call is fresh.
    assert all(hit.line != 5 for hit in hits)


def test_r010_sync_only_writers_not_flagged(tmp_path):
    files = {
        "repro/service/state.py": textwrap.dedent(
            """\
            class Plain:
                def __init__(self):
                    self._n = 0

                def bump(self):
                    self._n += 1

                def reset(self):
                    self._n = 0
            """
        ),
    }
    report = lint_tree(tmp_path, files, select=["R010"])
    assert report.findings == ()


def test_r011_client_call_to_undeclared_op(tmp_path):
    files = {
        "repro/service/protocol.py": 'OPS = ("query",)\n',
        "repro/service/engine.py": (
            "class Engine:\n    def op_query(self, s, t, k):\n"
            "        return {}\n"
        ),
        "repro/service/client.py": textwrap.dedent(
            """\
            class ServiceClient:
                def call(self, op, **fields):
                    return {}

                def oops(self):
                    return self.call("undeclared")
            """
        ),
    }
    report = lint_tree(tmp_path, files, select=["R011"])
    hits = report.for_rule("R011")
    assert len(hits) == 1 and hits[0].path.endswith("client.py")
    assert "undeclared" in hits[0].message


def test_r011_checks_api_doc_when_root_present(tmp_path):
    files = dict(PROGRAM_FIXTURES["R011"]["clean"])
    files["pyproject.toml"] = "[project]\nname = 'fixture'\n"
    files["docs/API.md"] = _R011_DOCS.replace(
        "`watch` (`s`, `t`)", "`wach`"
    )
    report = lint_tree(tmp_path, files, select=["R011"])
    messages = [hit.message for hit in report.for_rule("R011")]
    assert any("'watch'" in m and "missing from" in m for m in messages)
    assert any("'wach'" in m and "promises" in m for m in messages)


def test_r012_event_constant_resolution(tmp_path):
    files = {
        "pyproject.toml": "[project]\nname = 'fixture'\n",
        "docs/OBSERVABILITY.md": (
            "| kind | emitted by |\n|---|---|\n| `query.started` | engine |\n"
        ),
        "repro/obs/events.py": (
            'QUERY_STARTED = "query.started"\n'
            'BOGUS = "query.bogus"\n\n\n'
            "def emit(kind, **fields):\n    pass\n"
        ),
        "repro/service/emitting.py": textwrap.dedent(
            """\
            from repro.obs import events


            def work():
                events.emit(events.QUERY_STARTED, op="query")
                events.emit(events.BOGUS, op="query")
            """
        ),
    }
    report = lint_tree(tmp_path, files, select=["R012"])
    hits = report.for_rule("R012")
    assert len(hits) == 1 and hits[0].line == 6
    assert "query.bogus" in hits[0].message


def test_r012_placeholder_and_fstring_names(tmp_path):
    files = dict(PROGRAM_FIXTURES["R012"]["clean"])
    report = lint_tree(tmp_path, files, select=["R012"])
    assert report.findings == (), render_text(report)


# ----------------------------------------------------------------------
# W001: stale suppressions
# ----------------------------------------------------------------------
def test_w001_flags_stale_noqa(tmp_path):
    source = 'VALUE = 1  # repro: noqa[R005]\n\n__all__ = ["VALUE"]\n'
    report = lint_source(tmp_path, source)
    hits = report.for_rule("W001")
    assert len(hits) == 1 and hits[0].line == 1
    assert "unused suppression: R005" in hits[0].message


def test_w001_spares_used_noqa(tmp_path):
    bad, line, _ = RULE_FIXTURES["R005"]
    source = suppress_line(bad, line, "R005") + '\n__all__ = ["collect"]\n'
    report = lint_source(tmp_path, source)
    assert report.for_rule("W001") == [], render_text(report)
    assert report.for_rule("R005") == []


def test_w001_flags_unknown_rule_code(tmp_path):
    source = 'VALUE = 1  # repro: noqa[R999]\n\n__all__ = ["VALUE"]\n'
    report = lint_source(tmp_path, source)
    hits = report.for_rule("W001")
    assert len(hits) == 1
    assert "unknown rule 'R999'" in hits[0].message


def test_w001_silent_when_not_selected(tmp_path):
    source = 'VALUE = 1  # repro: noqa[R005]\n\n__all__ = ["VALUE"]\n'
    report = lint_source(tmp_path, source, select=["R005"])
    assert report.findings == ()


def test_w001_itself_suppressible(tmp_path):
    source = (
        'VALUE = 1  # repro: noqa[R005, W001]\n\n__all__ = ["VALUE"]\n'
    )
    report = lint_source(tmp_path, source)
    assert report.findings == (), render_text(report)


def test_noqa_in_docstring_does_not_suppress_or_trip_w001():
    noqa = parse_noqa(
        '"""Docs mention # repro: noqa[R001] without suppressing."""\n'
        "x = 1  # repro: noqa[R001]\n"
    )
    assert 1 not in noqa
    assert noqa[2] == frozenset({"R001"})


# ----------------------------------------------------------------------
# Engine / reporter plumbing
# ----------------------------------------------------------------------
def test_syntax_error_reported_as_e001(tmp_path):
    report = lint_source(tmp_path, "def broken(:\n")
    assert [f.rule for f in report.findings] == ["E001"]


def test_unknown_rule_rejected(tmp_path):
    with pytest.raises(ValueError):
        lint_source(tmp_path, "x = 1\n", select=["R999"])


def test_json_reporter_round_trips(tmp_path):
    bad, _, _ = RULE_FIXTURES["R005"]
    report = lint_source(tmp_path, bad, select=["R005"])
    payload = json.loads(render_json(report))
    assert payload["ok"] is False
    assert payload["files_scanned"] == 1
    assert payload["rules"] == ["R005"]
    assert payload["findings"][0]["rule"] == "R005"


def test_parse_noqa_formats():
    noqa = parse_noqa(
        "x = 1  # repro: noqa\n"
        "y = 2  # repro: noqa[R001, R002]\n"
        "z = 3  # ordinary comment\n"
    )
    assert noqa[1] == frozenset({"*"})
    assert noqa[2] == frozenset({"R001", "R002"})
    assert 3 not in noqa


def test_every_rule_has_code_name_description():
    rules = all_rules()
    codes = [rule.code for rule in rules]
    assert codes == sorted(codes) and len(set(codes)) == len(codes)
    for rule in rules:
        assert re.fullmatch(r"[RW]\d{3}", rule.code), rule.code
        assert rule.name and rule.description
        assert rule.phase in ("module", "program", "post")


# ----------------------------------------------------------------------
# The repo itself must lint clean (this is the CI gate)
# ----------------------------------------------------------------------
def test_repo_src_lints_clean():
    from repro.analysis import apply_baseline, load_baseline

    report = run_lint([str(ROOT / "src")])
    baseline = load_baseline(ROOT / "analysis-baseline.json")
    result = apply_baseline(report.findings, baseline, ROOT)
    assert result.new == (), render_text(report)
    assert report.files_scanned > 50


def test_repo_lints_clean_with_baseline_over_full_surface():
    """The CI gate: src/ benchmarks/ examples/ minus the frozen set."""
    from repro.analysis import apply_baseline, load_baseline

    report = run_lint(
        [str(ROOT / "src"), str(ROOT / "benchmarks"), str(ROOT / "examples")]
    )
    baseline = load_baseline(ROOT / "analysis-baseline.json")
    result = apply_baseline(report.findings, baseline, ROOT)
    assert result.new == (), "\n".join(f.render() for f in result.new)
    # every frozen entry must still exist — cleanup must shrink the file
    assert result.stale == (), f"stale baseline entries: {result.stale}"


def test_cli_lint_exits_zero_on_src(capsys):
    from repro.cli import main

    assert main([
        "lint", str(ROOT / "src"),
        "--baseline", str(ROOT / "analysis-baseline.json"),
    ]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out
    assert "frozen by the baseline" in out


def test_cli_lint_exit_codes(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "bad.py"
    bad.write_text(RULE_FIXTURES["R005"][0], encoding="utf-8")
    assert main(["lint", "--select", "R005", str(bad)]) == 1
    assert main(["lint", "--select", "bogus", str(bad)]) == 2
    assert main(["lint", str(tmp_path / "missing.py")]) == 2
    capsys.readouterr()

    assert main(["lint", "--format", "json", "--select", "R005",
                 str(bad)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"][0]["rule"] == "R005"
