"""Tests for :mod:`repro.analysis` — the project-specific lint engine.

Each rule gets a fixture triple: a snippet it must flag (with the rule
id and line asserted), a clean snippet it must pass, and the flagged
snippet again with a ``# repro: noqa[RULE]`` suppression on the hit
line.  On top of that the repo itself must lint clean — ``repro lint
src/`` is part of CI, so a regression here is a regression there.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import all_rules, render_json, render_text, run_lint
from repro.analysis.sources import parse_noqa

ROOT = Path(__file__).parent.parent

# ----------------------------------------------------------------------
# Rule fixtures: code -> (bad source, expected hit line, clean source)
# ----------------------------------------------------------------------
RULE_FIXTURES = {
    "R001": (
        textwrap.dedent(
            """\
            def corrupt(index, path):
                index.add_left(1, "v", path)
            """
        ),
        2,
        textwrap.dedent(
            """\
            def read(index):
                return index.count_left(1, 2)
            """
        ),
    ),
    "R002": (
        textwrap.dedent(
            """\
            def peek(cpe):
                return cpe._dist_s
            """
        ),
        2,
        textwrap.dedent(
            """\
            class Box:
                def __init__(self):
                    self._value = 1

                def value(self):
                    return self._value
            """
        ),
    ),
    "R003": (
        textwrap.dedent(
            """\
            import time


            async def pause():
                time.sleep(1)
            """
        ),
        5,
        textwrap.dedent(
            """\
            import asyncio
            import time


            def pause():
                time.sleep(1)


            async def apause():
                await asyncio.sleep(1)
            """
        ),
    ),
    "R004": (
        textwrap.dedent(
            """\
            def order(xs):
                return list({x for x in xs})
            """
        ),
        2,
        textwrap.dedent(
            """\
            def order(xs):
                return sorted({x for x in xs})
            """
        ),
    ),
    "R005": (
        textwrap.dedent(
            """\
            def collect(item, acc=[]):
                acc.append(item)
                return acc
            """
        ),
        1,
        textwrap.dedent(
            """\
            def collect(item, acc=None):
                if acc is None:
                    acc = []
                acc.append(item)
                return acc
            """
        ),
    ),
    "R006": (
        "def helper():\n    return 1\n",
        1,
        'def helper():\n    return 1\n\n\n__all__ = ["helper"]\n',
    ),
}


def lint_source(tmp_path, source, select=None, name="mod.py"):
    target = tmp_path / name
    target.write_text(source, encoding="utf-8")
    return run_lint([str(target)], select=select)


def suppress_line(source, line, rule):
    """Append ``# repro: noqa[rule]`` to the given 1-based line."""
    lines = source.splitlines()
    lines[line - 1] += f"  # repro: noqa[{rule}]"
    return "\n".join(lines) + "\n"


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_rule_flags_bad_fixture(rule, tmp_path):
    bad, line, _ = RULE_FIXTURES[rule]
    report = lint_source(tmp_path, bad, select=[rule])
    hits = report.for_rule(rule)
    assert hits, f"{rule} missed its fixture"
    assert hits[0].rule == rule
    assert hits[0].line == line
    assert hits[0].path.endswith("mod.py")


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_rule_passes_clean_fixture(rule, tmp_path):
    _, _, clean = RULE_FIXTURES[rule]
    report = lint_source(tmp_path, clean, select=[rule])
    assert report.findings == (), render_text(report)


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_rule_respects_noqa(rule, tmp_path):
    bad, line, _ = RULE_FIXTURES[rule]
    report = lint_source(tmp_path, suppress_line(bad, line, rule),
                         select=[rule])
    assert report.findings == (), render_text(report)


def test_bare_noqa_suppresses_every_rule(tmp_path):
    bad, line, _ = RULE_FIXTURES["R005"]
    lines = bad.splitlines()
    lines[line - 1] += "  # repro: noqa"
    report = lint_source(tmp_path, "\n".join(lines) + "\n", select=["R005"])
    assert report.findings == ()


def test_noqa_on_other_line_does_not_suppress(tmp_path):
    bad, line, _ = RULE_FIXTURES["R005"]
    report = lint_source(
        tmp_path, "# repro: noqa[R005]\n" + bad, select=["R005"]
    )
    assert report.for_rule("R005")


# ----------------------------------------------------------------------
# Rule-specific edge cases
# ----------------------------------------------------------------------
def test_r001_allows_the_maintenance_layer(tmp_path):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    bad, _, _ = RULE_FIXTURES["R001"]
    (pkg / "maintenance.py").write_text(bad, encoding="utf-8")
    report = run_lint([str(pkg / "maintenance.py")], select=["R001"])
    assert report.findings == (), "maintenance layer may mutate the index"


def _scoped_module(tmp_path, dotted_dir, filename, source):
    """Write ``source`` as a module inside a tmp package tree."""
    pkg = tmp_path
    for part in dotted_dir.split("/"):
        pkg = pkg / part
        pkg.mkdir(exist_ok=True)
        (pkg / "__init__.py").write_text("", encoding="utf-8")
    target = pkg / filename
    target.write_text(source, encoding="utf-8")
    return target


_R007_BAD = textwrap.dedent(
    """\
    def handle(op):
        print("handling", op)
    """
)


def test_r007_flags_print_in_service_layer(tmp_path):
    target = _scoped_module(tmp_path, "repro/service", "engine.py", _R007_BAD)
    report = run_lint([str(target)], select=["R007"])
    hits = report.for_rule("R007")
    assert hits and hits[0].line == 2
    assert "repro.obs.events" in hits[0].message


def test_r007_flags_logging_import_in_core_layer(tmp_path):
    source = "import logging\n\nlog = logging.getLogger(__name__)\n"
    target = _scoped_module(tmp_path, "repro/core", "maintenance.py", source)
    report = run_lint([str(target)], select=["R007"])
    hits = report.for_rule("R007")
    assert hits and hits[0].line == 1

    source = "from logging import getLogger\n"
    target = _scoped_module(tmp_path, "repro/core", "other.py", source)
    report = run_lint([str(target)], select=["R007"])
    assert report.for_rule("R007")


def test_r007_flags_print_in_parallel_layer(tmp_path):
    target = _scoped_module(tmp_path, "repro/parallel", "worker.py", _R007_BAD)
    report = run_lint([str(target)], select=["R007"])
    hits = report.for_rule("R007")
    assert hits and hits[0].line == 2
    assert "repro.obs.events" in hits[0].message


def test_r007_ignores_modules_outside_the_scoped_layers(tmp_path):
    for dotted in ("repro/cli_helpers", "repro/experiments", "other"):
        target = _scoped_module(tmp_path, dotted, "mod.py", _R007_BAD)
        report = run_lint([str(target)], select=["R007"])
        assert report.findings == (), f"{dotted} should be out of scope"


def test_r007_respects_noqa(tmp_path):
    source = suppress_line(_R007_BAD, 2, "R007")
    target = _scoped_module(tmp_path, "repro/service", "engine.py", source)
    report = run_lint([str(target)], select=["R007"])
    assert report.findings == ()


def test_r002_allows_same_class_private_access(tmp_path):
    source = textwrap.dedent(
        """\
        class Pair:
            def __init__(self):
                self._left = 0

            def __eq__(self, other):
                return self._left == other._left
        """
    )
    report = lint_source(tmp_path, source, select=["R002"])
    assert report.findings == ()


def test_r003_nested_sync_def_shields_its_body(tmp_path):
    source = textwrap.dedent(
        """\
        import time


        async def outer():
            def worker():
                time.sleep(1)
            return worker
        """
    )
    report = lint_source(tmp_path, source, select=["R003"])
    assert report.findings == ()


def test_r004_ignores_sorted_set(tmp_path):
    report = lint_source(
        tmp_path, "order = sorted({3, 1, 2})\n__all__ = ['order']\n"
    )
    assert report.findings == ()


def test_r006_flags_unbound_and_private_exports(tmp_path):
    source = '__all__ = ["missing", "_hidden"]\n_hidden = 1\n'
    report = lint_source(tmp_path, source, select=["R006"])
    messages = [f.message for f in report.findings]
    assert any("missing" in m for m in messages)
    assert any("_hidden" in m for m in messages)


def test_r006_exempts_private_modules(tmp_path):
    report = lint_source(
        tmp_path, "def helper():\n    return 1\n",
        select=["R006"], name="_internal.py",
    )
    assert report.findings == ()


# ----------------------------------------------------------------------
# Engine / reporter plumbing
# ----------------------------------------------------------------------
def test_syntax_error_reported_as_e001(tmp_path):
    report = lint_source(tmp_path, "def broken(:\n")
    assert [f.rule for f in report.findings] == ["E001"]


def test_unknown_rule_rejected(tmp_path):
    with pytest.raises(ValueError):
        lint_source(tmp_path, "x = 1\n", select=["R999"])


def test_json_reporter_round_trips(tmp_path):
    bad, _, _ = RULE_FIXTURES["R005"]
    report = lint_source(tmp_path, bad, select=["R005"])
    payload = json.loads(render_json(report))
    assert payload["ok"] is False
    assert payload["files_scanned"] == 1
    assert payload["rules"] == ["R005"]
    assert payload["findings"][0]["rule"] == "R005"


def test_parse_noqa_formats():
    noqa = parse_noqa(
        "x = 1  # repro: noqa\n"
        "y = 2  # repro: noqa[R001, R002]\n"
        "z = 3  # ordinary comment\n"
    )
    assert noqa[1] == frozenset({"*"})
    assert noqa[2] == frozenset({"R001", "R002"})
    assert 3 not in noqa


def test_every_rule_has_code_name_description():
    rules = all_rules()
    codes = [rule.code for rule in rules]
    assert codes == sorted(codes) and len(set(codes)) == len(codes)
    for rule in rules:
        assert rule.code.startswith("R") and len(rule.code) == 4
        assert rule.name and rule.description


# ----------------------------------------------------------------------
# The repo itself must lint clean (this is the CI gate)
# ----------------------------------------------------------------------
def test_repo_src_lints_clean():
    report = run_lint([str(ROOT / "src")])
    assert report.findings == (), render_text(report)
    assert report.files_scanned > 50


def test_cli_lint_exits_zero_on_src(capsys):
    from repro.cli import main

    assert main(["lint", str(ROOT / "src")]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_cli_lint_exit_codes(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "bad.py"
    bad.write_text(RULE_FIXTURES["R005"][0], encoding="utf-8")
    assert main(["lint", "--select", "R005", str(bad)]) == 1
    assert main(["lint", "--select", "bogus", str(bad)]) == 2
    assert main(["lint", str(tmp_path / "missing.py")]) == 2
    capsys.readouterr()

    assert main(["lint", "--format", "json", "--select", "R005",
                 str(bad)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"][0]["rule"] == "R005"
