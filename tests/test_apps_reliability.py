"""Tests for the terminal-reliability application."""

import pytest

from repro.apps.reliability import ReliabilityEstimator
from repro.graph.digraph import DynamicDiGraph


def make_two_route_network(p=0.9):
    # two disjoint 2-hop routes from 0 to 3
    g = DynamicDiGraph([(0, 1), (1, 3), (0, 2), (2, 3)])
    return ReliabilityEstimator(g, 0, 3, 3, link_up_probability=p)


class TestExact:
    def test_single_route(self):
        g = DynamicDiGraph([(0, 1), (1, 2)])
        est = ReliabilityEstimator(g, 0, 2, 2, link_up_probability=0.9)
        assert est.exact() == pytest.approx(0.81)

    def test_two_disjoint_routes_inclusion_exclusion(self):
        est = make_two_route_network(0.9)
        # 1 - (1 - .81)^2 by independence of disjoint routes
        assert est.exact() == pytest.approx(1 - (1 - 0.81) ** 2)

    def test_shared_link_routes(self):
        # routes (0,1,3) and (0,2,3) plus shortcut (0,3): three routes
        g = DynamicDiGraph([(0, 1), (1, 3), (0, 2), (2, 3), (0, 3)])
        est = ReliabilityEstimator(g, 0, 3, 2, link_up_probability=0.5)
        # brute force over all 2^5 link states
        links = list(g.edges())
        routes = [((0, 1), (1, 3)), ((0, 2), (2, 3)), ((0, 3),)]
        total = 0.0
        for mask in range(2 ** len(links)):
            up = {links[i] for i in range(len(links)) if mask >> i & 1}
            prob = 0.5 ** len(links)
            if any(all(e in up for e in r) for r in routes):
                total += prob
        assert est.exact() == pytest.approx(total)

    def test_no_routes(self):
        g = DynamicDiGraph(vertices=[0, 1])
        est = ReliabilityEstimator(g, 0, 1, 3)
        assert est.exact() == 0.0
        assert est.estimate(100, seed=1) == 0.0

    def test_exact_limit(self):
        est = make_two_route_network()
        with pytest.raises(ValueError):
            est.exact(max_routes=1)

    def test_probability_validation(self):
        g = DynamicDiGraph([(0, 1)])
        with pytest.raises(ValueError):
            ReliabilityEstimator(g, 0, 1, 2, link_up_probability=1.5)


class TestMonteCarlo:
    def test_estimate_close_to_exact(self):
        est = make_two_route_network(0.8)
        exact = est.exact()
        approx = est.estimate(samples=20000, seed=3)
        assert approx == pytest.approx(exact, abs=0.02)

    def test_estimate_deterministic_for_seed(self):
        est = make_two_route_network()
        assert est.estimate(500, seed=7) == est.estimate(500, seed=7)


class TestDynamics:
    def test_link_down_reduces_reliability(self):
        est = make_two_route_network(0.9)
        before = est.exact()
        assert est.link_down(0, 1) == 1
        assert est.route_count() == 1
        assert est.exact() < before
        assert est.audit()

    def test_link_up_restores(self):
        est = make_two_route_network(0.9)
        est.link_down(0, 1)
        assert est.link_up(0, 1) == 1
        assert est.route_count() == 2
        assert est.audit()

    def test_new_shortcut_route(self):
        est = make_two_route_network(0.9)
        appeared = est.link_up(0, 3)
        assert appeared == 1
        assert (0, 3) in est.routes
