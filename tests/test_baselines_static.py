"""Differential tests for the static baseline enumerators."""

import random

import pytest

from repro.baselines.bcdfs import BcDfsEnumerator
from repro.baselines.bcjoin import BcJoinEnumerator
from repro.baselines.bruteforce import count_paths, enumerate_paths, path_set
from repro.baselines.pathenum import PathEnumEnumerator
from repro.baselines.tdfs import TDfsEnumerator
from repro.graph.digraph import DynamicDiGraph
from tests.conftest import make_random_graph, random_query

ALL = [TDfsEnumerator, BcDfsEnumerator, BcJoinEnumerator, PathEnumEnumerator]


class TestBruteForce:
    def test_diamond(self, diamond):
        assert path_set(diamond, 0, 3, 2) == {(0, 3), (0, 1, 3), (0, 2, 3)}

    def test_equal_endpoints_empty(self, diamond):
        assert list(enumerate_paths(diamond, 0, 0, 3)) == []

    def test_k0_empty(self, diamond):
        assert list(enumerate_paths(diamond, 0, 3, 0)) == []

    def test_count(self, diamond):
        assert count_paths(diamond, 0, 3, 2) == 3


@pytest.mark.parametrize("cls", ALL)
class TestStaticBaselines:
    def test_rejects_equal_endpoints(self, cls):
        with pytest.raises(ValueError):
            cls(DynamicDiGraph([(0, 1)]), 0, 0, 3)

    def test_diamond(self, cls, diamond):
        assert set(cls(diamond, 0, 3, 2).paths()) == {
            (0, 3), (0, 1, 3), (0, 2, 3)
        }

    def test_unreachable_target(self, cls):
        g = DynamicDiGraph([(0, 1)], vertices=[5])
        assert cls(g, 0, 5, 6).paths() == []

    def test_k1_direct_only(self, cls, diamond):
        assert cls(diamond, 0, 3, 1).paths() == [(0, 3)]

    def test_matches_bruteforce_randomized(self, cls):
        rng = random.Random(hash(cls.__name__) % 1000)
        for _ in range(40):
            g = make_random_graph(rng)
            s, t, k = random_query(rng, g)
            got = cls(g, s, t, k).paths()
            assert len(got) == len(set(got)), "duplicate paths"
            assert set(got) == path_set(g, s, t, k)

    def test_run_iterator(self, cls, diamond):
        assert set(cls(diamond, 0, 3, 2).run()) == path_set(diamond, 0, 3, 2)


class TestBcDfsBarriers:
    def test_barriers_are_used(self):
        # cyclic detours whose completions are blocked by on-path
        # vertices: barriers must fire and later be reset
        g = DynamicDiGraph(
            [(0, 1), (0, 3), (1, 2), (2, 0), (2, 1),
             (3, 1), (3, 4), (4, 1), (4, 2), (4, 3)]
        )
        enum = BcDfsEnumerator(g, 0, 4, 6)
        paths = enum.paths()
        assert set(paths) == path_set(g, 0, 4, 6)
        assert enum.barrier_updates > 0
        assert enum.barrier_resets > 0

    def test_barrier_reset_keeps_completeness(self):
        # vertex 3 fails while 2 blocks the only exit, succeeds later:
        # barriers must not survive 2 leaving the stack
        g = DynamicDiGraph(
            [(0, 1), (1, 2), (2, 3), (3, 4), (0, 2), (2, 4), (3, 2)]
        )
        for k in range(1, 7):
            assert set(BcDfsEnumerator(g, 0, 4, k).paths()) == path_set(
                g, 0, 4, k
            )


class TestBcJoinDetails:
    def test_partial_counters_populated(self, paper_figure2):
        enum = BcJoinEnumerator(paper_figure2, 0, 9, 4)
        enum.paths()
        assert enum.left_partials > 0
        assert enum.right_partials > 0

    def test_fixed_cut_plan(self):
        enum = BcJoinEnumerator(DynamicDiGraph([(0, 1)]), 0, 1, 7)
        assert enum.plan.l == 4
        assert enum.plan.r == 3


class TestPathEnumOptimizer:
    def test_cut_selection_runs(self, paper_figure2):
        enum = PathEnumEnumerator(paper_figure2, 0, 9, 4)
        enum.paths()
        assert 0 <= enum.chosen_cut < 4

    def test_both_strategies_agree(self):
        rng = random.Random(123)
        for _ in range(20):
            g = make_random_graph(rng, max_edges=18)
            s, t, k = random_query(rng, g, k_hi=5)
            enum = PathEnumEnumerator(g, s, t, k)
            want = path_set(g, s, t, k)
            if enum.dist_t.get(s) > k:
                assert enum.paths() == []
                continue
            assert set(enum._dfs_paths()) == want
            for cut in range(1, k):
                got = enum._join_paths(cut)
                assert len(got) == len(set(got))
                assert set(got) == want
