"""Tests for admission control: capacity, deadlines, drain."""

import asyncio
import time

import pytest

from repro.service.admission import AdmissionController
from repro.service.protocol import (
    DeadlineExceededError,
    OverloadedError,
    ShuttingDownError,
)


def run(coro):
    return asyncio.run(coro)


class TestAdmit:
    def test_serializes_execution(self):
        async def main():
            controller = AdmissionController(capacity=4)
            active = 0
            peak = 0

            async def job():
                nonlocal active, peak
                async with controller.admit():
                    active += 1
                    peak = max(peak, active)
                    await asyncio.sleep(0.01)
                    active -= 1

            await asyncio.gather(*[job() for _ in range(4)])
            assert peak == 1, "admitted bodies must never overlap"
            assert controller.stats().admitted == 4

        run(main())

    def test_overload_rejection_is_immediate(self):
        async def main():
            controller = AdmissionController(capacity=1, retry_after_ms=77)
            release = asyncio.Event()

            async def occupant():
                async with controller.admit():
                    await release.wait()

            task = asyncio.create_task(occupant())
            await asyncio.sleep(0.01)
            with pytest.raises(OverloadedError) as info:
                async with controller.admit():
                    pass
            assert info.value.retry_after_ms == 77
            assert controller.stats().rejected_overload == 1
            release.set()
            await task

        run(main())

    def test_deadline_already_elapsed(self):
        async def main():
            controller = AdmissionController(capacity=2)
            with pytest.raises(DeadlineExceededError):
                async with controller.admit(deadline=time.monotonic() - 1):
                    pass
            assert controller.stats().expired == 1

        run(main())

    def test_deadline_elapses_while_queued(self):
        async def main():
            controller = AdmissionController(capacity=4)
            release = asyncio.Event()

            async def occupant():
                async with controller.admit():
                    await release.wait()

            task = asyncio.create_task(occupant())
            await asyncio.sleep(0.01)
            with pytest.raises(DeadlineExceededError):
                async with controller.admit(
                    deadline=time.monotonic() + 0.05
                ):
                    pass
            assert controller.stats().expired == 1
            release.set()
            await task
            # the occupant's slot was never lost
            assert controller.in_flight == 0

        run(main())

    def test_deadline_met_while_queued_still_runs(self):
        async def main():
            controller = AdmissionController(capacity=4)
            release = asyncio.Event()
            ran = False

            async def occupant():
                async with controller.admit():
                    await release.wait()

            task = asyncio.create_task(occupant())
            await asyncio.sleep(0.01)

            async def waiter():
                nonlocal ran
                async with controller.admit(
                    deadline=time.monotonic() + 5.0
                ):
                    ran = True

            waiter_task = asyncio.create_task(waiter())
            await asyncio.sleep(0.01)
            release.set()
            await asyncio.gather(task, waiter_task)
            assert ran

        run(main())


class TestShutdown:
    def test_begin_shutdown_rejects_new_work(self):
        async def main():
            controller = AdmissionController()
            controller.begin_shutdown()
            with pytest.raises(ShuttingDownError):
                async with controller.admit():
                    pass
            assert controller.stats().rejected_shutdown == 1

        run(main())

    def test_drain_waits_for_in_flight(self):
        async def main():
            controller = AdmissionController()
            finished = False

            async def job():
                nonlocal finished
                async with controller.admit():
                    await asyncio.sleep(0.02)
                    finished = True

            task = asyncio.create_task(job())
            await asyncio.sleep(0.005)
            controller.begin_shutdown()
            assert await controller.drain(timeout=2.0)
            assert finished
            await task

        run(main())

    def test_drain_times_out(self):
        async def main():
            controller = AdmissionController()
            release = asyncio.Event()

            async def job():
                async with controller.admit():
                    await release.wait()

            task = asyncio.create_task(job())
            await asyncio.sleep(0.005)
            assert not await controller.drain(timeout=0.02)
            release.set()
            await task

        run(main())

    def test_drain_on_idle_returns_immediately(self):
        async def main():
            controller = AdmissionController()
            assert await controller.drain(timeout=0.01)

        run(main())


class TestConfig:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionController(capacity=0)

    def test_stats_shape(self):
        controller = AdmissionController(capacity=3)
        digest = controller.stats().as_dict()
        assert digest["capacity"] == 3
        assert set(digest) == {
            "admitted", "rejected_overload", "rejected_shutdown",
            "expired", "in_flight", "capacity",
        }
