"""White-box tests for baseline internals."""

import random

import pytest

from repro.baselines.bcjoin import BcJoinEnumerator
from repro.baselines.csm import CsmStarEnumerator
from repro.baselines.pathenum import PathEnumEnumerator
from repro.baselines.tdfs import TDfsEnumerator
from repro.core.construction import build_index
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import layered_dag
from tests.conftest import make_random_graph, random_query


class TestPathEnumInternals:
    def test_walk_counts_match_estimate_module(self):
        from repro.core.estimate import walk_count_bound

        rng = random.Random(51)
        for _ in range(20):
            g = make_random_graph(rng, max_edges=16)
            s, t, k = random_query(rng, g)
            enum = PathEnumEnumerator(g, s, t, k)
            if enum.dist_t.get(s) > k:
                continue
            counts = enum._walk_counts()
            arrived = sum(
                counts["from_s"][i].get(t, 0) for i in range(1, k + 1)
            )
            assert arrived == walk_count_bound(g, s, t, k)

    def test_optimizer_prefers_join_on_diamond_lattice(self):
        # wide middle layer: a mid cut materializes far fewer partials
        g, s, t = layered_dag([2, 8, 2])
        enum = PathEnumEnumerator(g, s, t, 4)
        enum.paths()
        assert enum.chosen_cut in (0, 1, 2, 3)

    def test_unreachable_early_exit(self):
        g = DynamicDiGraph([(0, 1)], vertices=[9])
        enum = PathEnumEnumerator(g, 0, 9, 5)
        assert enum.paths() == []
        assert enum.chosen_cut == 0

    def test_walk_dp_symmetry(self):
        g, s, t = layered_dag([3, 3])
        enum = PathEnumEnumerator(g, s, t, 3)
        counts = enum._walk_counts()
        # forward walks reaching t at the full length equal backward
        # walks reaching s
        assert counts["from_s"][3].get(t, 0) == counts["to_t"][3].get(s, 0)


class TestBcJoinInternals:
    def test_weak_pruning_stores_superset_of_strong(self):
        rng = random.Random(52)
        for _ in range(15):
            g = make_random_graph(rng, max_edges=18)
            s, t, k = random_query(rng, g, k_hi=5)
            weak = BcJoinEnumerator(g, s, t, k)
            weak.paths()
            if k < 2:
                continue
            strong = build_index(g, s, t, k, forced_plan=weak.plan)
            strong_total = len(strong.index.left) + len(strong.index.right)
            weak_total = weak.left_partials + weak.right_partials
            assert weak_total >= strong_total

    def test_direct_edge_emitted_without_partials(self):
        g = DynamicDiGraph([(0, 1)])
        enum = BcJoinEnumerator(g, 0, 1, 1)
        assert enum.paths() == [(0, 1)]
        assert enum.left_partials == 0


class TestTdfsInternals:
    def test_unreachable_early_exit(self):
        g = DynamicDiGraph([(0, 1)], vertices=[9])
        assert TDfsEnumerator(g, 0, 9, 6).paths() == []

    def test_every_expansion_leads_to_a_result_on_dags(self):
        # on a DAG the distance test is exact: explored prefix count
        # equals sum over results of their lengths (each prefix extends)
        g, s, t = layered_dag([2, 2])
        enum = TDfsEnumerator(g, s, t, 3)
        assert len(enum.paths()) == 4


class TestCsmInternals:
    def test_candidate_filter(self, diamond):
        enum = CsmStarEnumerator(diamond.copy(), 0, 3, 2)
        assert enum._candidate(0) and enum._candidate(3)
        diamond2 = diamond.copy()
        diamond2.add_vertex(99)
        enum = CsmStarEnumerator(diamond2, 0, 3, 2)
        assert not enum._candidate(99)

    def test_paths_through_respects_budget_split(self):
        g = DynamicDiGraph([(0, 1), (1, 2), (2, 3), (3, 4)])
        enum = CsmStarEnumerator(g, 0, 4, 4)
        paths = enum._paths_through(2, 3)
        assert paths == [(0, 1, 2, 3, 4)]
        tight = CsmStarEnumerator(g.copy(), 0, 4, 3)
        assert tight._paths_through(2, 3) == []

    def test_paths_through_self_loop_empty(self, diamond):
        enum = CsmStarEnumerator(diamond, 0, 3, 3)
        assert enum._paths_through(1, 1) == []


class TestConstructionCounters:
    def test_expansions_split_into_stored_and_pruned(self):
        rng = random.Random(53)
        for _ in range(20):
            g = make_random_graph(rng, max_edges=18)
            s, t, k = random_query(rng, g)
            result = build_index(g, s, t, k)
            stats = result.stats
            stored = stats.left_paths + stats.right_paths
            assert stats.expansions == stored + stats.pruned
            assert stats.left_levels <= max(1, k)
            assert stats.prep_seconds >= 0
            assert stats.build_seconds >= 0
