"""Unit tests for path helpers."""

import pytest

from repro.core import paths
from repro.graph.digraph import DynamicDiGraph


def test_hops():
    assert paths.hops((1,)) == 0
    assert paths.hops((1, 2, 3)) == 2


def test_is_simple():
    assert paths.is_simple((1, 2, 3))
    assert not paths.is_simple((1, 2, 1))


def test_exists_in():
    g = DynamicDiGraph([(1, 2), (2, 3)])
    assert paths.exists_in((1, 2, 3), g)
    assert not paths.exists_in((1, 3), g)
    assert paths.exists_in((1,), g)  # no edges to check


class TestIsKstPath:
    g = DynamicDiGraph([(0, 1), (1, 2), (0, 2)])

    def test_valid(self):
        assert paths.is_k_st_path((0, 1, 2), self.g, 0, 2, 2)
        assert paths.is_k_st_path((0, 2), self.g, 0, 2, 1)

    def test_wrong_endpoints(self):
        assert not paths.is_k_st_path((0, 1), self.g, 0, 2, 3)
        assert not paths.is_k_st_path((1, 2), self.g, 0, 2, 3)

    def test_too_long(self):
        assert not paths.is_k_st_path((0, 1, 2), self.g, 0, 2, 1)

    def test_not_simple(self):
        g = DynamicDiGraph([(0, 1), (1, 0), (0, 2)])
        assert not paths.is_k_st_path((0, 1, 0, 2), g, 0, 2, 5)

    def test_single_vertex_rejected(self):
        assert not paths.is_k_st_path((0,), self.g, 0, 0, 3)

    def test_missing_edge(self):
        assert not paths.is_k_st_path((0, 2, 1), self.g, 0, 1, 3)


class TestJoin:
    def test_joins_at_cut_vertex(self):
        assert paths.join((0, 1, 2), (2, 3)) == (0, 1, 2, 3)

    def test_mismatched_endpoints(self):
        with pytest.raises(ValueError):
            paths.join((0, 1), (2, 3))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            paths.join((), (1, 2))


def test_uses_edge():
    assert paths.uses_edge((0, 1, 2), 1, 2)
    assert not paths.uses_edge((0, 1, 2), 2, 1)
    assert not paths.uses_edge((0, 1, 2), 0, 2)


def test_canonical_ordering():
    unordered = [(1, 2, 3), (1, 2), (0, 9)]
    assert paths.canonical(unordered) == ((0, 9), (1, 2), (1, 2, 3))
