"""Smoke tests: every example script must run to completion.

The examples carry their own internal assertions (maintained state vs
recomputation), so a clean exit is a meaningful check.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch):
    # examples must not depend on their working directory
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"
