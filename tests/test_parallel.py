"""Tests for :mod:`repro.parallel` — sharded multi-process monitoring.

The centrepiece is the fixed-seed equivalence gate: a generated graph
plus update stream (with forced no-op updates and watch/unwatch churn
mid-stream) must produce **byte-identical** transcripts — initial
results, per-update deltas, and final result sets — from a
:class:`ShardedMonitor` at 1, 2 and 4 workers and from a single-process
:class:`MultiPairMonitor`.
"""

import json
import random

import pytest

from repro.core.monitor import MultiPairMonitor
from repro.core.serialize import graph_snapshot
from repro.graph.digraph import DynamicDiGraph, EdgeUpdate
from repro.parallel import ShardedMonitor, WorkerPool
from repro.parallel.messages import ResultsCmd, ShardInit, WatchCmd
from repro.service.engine import PathQueryEngine

N_VERTICES = 12
K = 4


def canon(obj):
    """Canonical bytes: the 'byte-identical' comparison currency."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()


def pair_name(pair):
    return f"{pair[0]}->{pair[1]}"


def build_ops(seed, updates=40):
    """A deterministic op script: watches, churn, and mixed updates.

    Roughly 30% of the generated updates are forced no-ops (re-insert
    of a present edge / delete of an absent one); two extra pairs are
    watched mid-stream and one original pair is unwatched.
    """
    rng = random.Random(seed)
    edges = set()
    while len(edges) < 30:
        u, v = rng.sample(range(N_VERTICES), 2)
        edges.add((u, v))
    edges = sorted(edges)

    pairs = []
    while len(pairs) < 5:
        s, t = rng.sample(range(N_VERTICES), 2)
        if (s, t) not in pairs:
            pairs.append((s, t))
    extra = []
    while len(extra) < 2:
        s, t = rng.sample(range(N_VERTICES), 2)
        if (s, t) not in pairs and (s, t) not in extra:
            extra.append((s, t))

    ops = [("watch", s, t) for s, t in pairs]
    state = set(edges)
    for i in range(updates):
        if i == 12:
            ops.append(("watch", *extra[0]))
        if i == 20:
            ops.append(("unwatch", *pairs[1]))
        if i == 26:
            ops.append(("watch", *extra[1]))
        roll = rng.random()
        if roll < 0.30:
            # forced no-op against the current edge state
            if state and rng.random() < 0.5:
                u, v = rng.choice(sorted(state))
                ops.append(("apply", EdgeUpdate(u, v, True)))
            else:
                while True:
                    u, v = rng.sample(range(N_VERTICES), 2)
                    if (u, v) not in state:
                        break
                ops.append(("apply", EdgeUpdate(u, v, False)))
        elif roll < 0.65 or not state:
            while True:
                u, v = rng.sample(range(N_VERTICES), 2)
                if (u, v) not in state:
                    break
            state.add((u, v))
            ops.append(("apply", EdgeUpdate(u, v, True)))
        else:
            u, v = rng.choice(sorted(state))
            state.discard((u, v))
            ops.append(("apply", EdgeUpdate(u, v, False)))
    return edges, ops


def run_script(edges, ops, factory):
    """Run the op script against a monitor; canonical transcript bytes."""
    graph = DynamicDiGraph(edges, vertices=range(N_VERTICES))
    monitor = factory(graph)
    transcript = []
    try:
        for op in ops:
            if op[0] == "watch":
                paths = monitor.watch(op[1], op[2], K)
                transcript.append([
                    "watch",
                    pair_name((op[1], op[2])),
                    [list(p) for p in paths],
                ])
            elif op[0] == "unwatch":
                transcript.append([
                    "unwatch",
                    pair_name((op[1], op[2])),
                    monitor.unwatch(op[1], op[2]),
                ])
            else:
                results = monitor.apply(op[1])
                transcript.append([
                    "apply",
                    [op[1].u, op[1].v, op[1].insert],
                    {
                        pair_name(pair): {
                            "changed": result.changed,
                            "paths": [list(p) for p in result.paths],
                        }
                        for pair, result in sorted(results.items())
                    },
                ])
        transcript.append([
            "final",
            {
                pair_name(pair): [list(p) for p in paths]
                for pair, paths in sorted(monitor.results().items())
            },
        ])
    finally:
        close = getattr(monitor, "close", None)
        if close is not None:
            close()
    return canon(transcript)


# ---------------------------------------------------------------------------
# The equivalence gate
# ---------------------------------------------------------------------------


class TestEquivalence:
    SEED = 97

    @pytest.fixture(scope="class")
    def reference(self):
        edges, ops = build_ops(self.SEED)
        return run_script(edges, ops, lambda g: MultiPairMonitor(g, K))

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sharded_matches_single_process(self, reference, workers):
        edges, ops = build_ops(self.SEED)
        sharded = run_script(
            edges, ops, lambda g: ShardedMonitor(g, K, workers=workers)
        )
        assert sharded == reference


# ---------------------------------------------------------------------------
# ShardedMonitor API
# ---------------------------------------------------------------------------


def small_graph():
    return DynamicDiGraph([(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)])


class TestShardedMonitor:
    def test_watch_placement_is_least_loaded_deterministic(self):
        with ShardedMonitor(small_graph(), 3, workers=2) as monitor:
            monitor.watch(0, 3)
            monitor.watch(0, 2)
            monitor.watch(1, 3)
            assert monitor.pairs_per_shard() == [2, 1]
            assert monitor.shard_of(0, 3) == 0
            assert monitor.shard_of(0, 2) == 1
            assert monitor.shard_of(1, 3) == 0
            assert monitor.shard_of(9, 9) is None
            assert len(monitor) == 3
            assert monitor.watched_k(0, 3) == 3
            assert monitor.watched_k(9, 9) is None

    def test_watch_many_matches_individual_watches(self):
        pairs = [(0, 3), (0, 2), (1, 3), (2, 3)]
        with ShardedMonitor(small_graph(), 3, workers=2) as bulk:
            bulk_results = bulk.watch_many(pairs)
            bulk_loads = bulk.pairs_per_shard()
        with ShardedMonitor(small_graph(), 3, workers=2) as single:
            single_results = {
                (s, t): single.watch(s, t) for s, t in pairs
            }
            single_loads = single.pairs_per_shard()
        assert bulk_results == single_results
        assert bulk_loads == single_loads

    def test_duplicate_watch_rejected(self):
        with ShardedMonitor(small_graph(), 3, workers=2) as monitor:
            monitor.watch(0, 3)
            with pytest.raises(ValueError):
                monitor.watch(0, 3)
            with pytest.raises(ValueError):
                monitor.watch_many([(1, 3), (0, 3)])
            # the failed bulk call must not have half-registered (1, 3)
            assert set(monitor.pairs()) == {(0, 3)}

    def test_worker_side_value_error_propagates_and_shard_survives(self):
        with ShardedMonitor(small_graph(), 3, workers=1) as monitor:
            with pytest.raises(ValueError):
                monitor.watch(2, 2)  # s == t rejected inside the worker
            assert monitor.pairs() == []
            assert monitor.watch(0, 3)  # the shard still serves

    def test_noop_update_skips_fanout_and_reports_unchanged(self):
        with ShardedMonitor(small_graph(), 3, workers=2) as monitor:
            monitor.watch(0, 3)
            monitor.watch(1, 3)
            results = monitor.apply(EdgeUpdate(0, 1, True))  # already present
            assert set(results) == {(0, 3), (1, 3)}
            assert all(not r.changed for r in results.values())
            assert all(r.paths == [] for r in results.values())

    def test_results_for_unwatched_raises_key_error(self):
        with ShardedMonitor(small_graph(), 3, workers=2) as monitor:
            with pytest.raises(KeyError):
                monitor.results_for(0, 3)

    def test_insert_and_delete_edge_helpers(self):
        with ShardedMonitor(small_graph(), 3, workers=2) as monitor:
            monitor.watch(0, 3)
            inserted = monitor.insert_edge(0, 3)
            assert (0, 3) in inserted and (0, 3) in inserted[(0, 3)].paths
            deleted = monitor.delete_edge(0, 3)
            assert (0, 3) in deleted[(0, 3)].paths

    def test_close_is_idempotent_and_operations_fail_after(self):
        monitor = ShardedMonitor(small_graph(), 3, workers=2)
        monitor.watch(0, 3)
        monitor.close()
        monitor.close()
        with pytest.raises(RuntimeError):
            monitor.apply(EdgeUpdate(3, 0, True))
        with pytest.raises(RuntimeError):
            monitor.watch(1, 3)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ShardedMonitor(small_graph(), -1, workers=2)
        with pytest.raises(ValueError):
            ShardedMonitor(small_graph(), 3, workers=0)


# ---------------------------------------------------------------------------
# WorkerPool
# ---------------------------------------------------------------------------


class TestWorkerPool:
    def test_pool_survives_command_errors(self):
        state = graph_snapshot(small_graph())
        with WorkerPool([ShardInit(0, state, 3)]) as pool:
            with pytest.raises(ValueError):
                pool.request(0, WatchCmd(5, 5, 3))  # s == t
            with pytest.raises(KeyError):
                pool.request(0, ResultsCmd(pairs=((0, 3),)))  # unwatched
            reply = pool.request(0, WatchCmd(0, 3, 3))
            assert len(reply.paths) > 0

    def test_ready_handshake_reports_replica_shape(self):
        graph = small_graph()
        state = graph_snapshot(graph)
        with WorkerPool([ShardInit(0, state, 3), ShardInit(1, state, 3)]) as pool:
            assert len(pool) == 2
            assert [r.shard for r in pool.ready] == [0, 1]
            for ready in pool.ready:
                assert ready.vertices == graph.num_vertices
                assert ready.edges == graph.num_edges

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool([])

    def test_close_is_idempotent(self):
        pool = WorkerPool([ShardInit(0, graph_snapshot(small_graph()), 3)])
        pool.close()
        pool.close()
        assert pool.closed


# ---------------------------------------------------------------------------
# Engine integration
# ---------------------------------------------------------------------------


class TestEngineWithWorkers:
    def test_engine_responses_match_single_process(self):
        script = [
            ("watch", {"s": 0, "t": 3}),
            ("watch", {"s": 1, "t": 3}),
            ("query", {"s": 0, "t": 3, "k": 3}),
            ("update", {"u": 0, "v": 3, "insert": True}),
            ("update", {"u": 0, "v": 3, "insert": True}),  # no-op
            ("query", {"s": 0, "t": 2, "k": 2}),  # ad-hoc, cache path
            ("update", {"u": 0, "v": 3, "insert": False}),
            ("unwatch", {"s": 1, "t": 3}),
            ("batch_update", {"updates": [[3, 0, True], [3, 0, False],
                                          [0, 3, True]]}),
        ]

        def run(workers):
            engine = PathQueryEngine(small_graph(), default_k=3,
                                     workers=workers)
            try:
                return [engine.handle(op, dict(args)) for op, args in script]
            finally:
                engine.close()

        assert run(2) == run(1)

    def test_stats_reports_shard_layout(self):
        engine = PathQueryEngine(small_graph(), default_k=3, workers=2)
        try:
            engine.op_watch(0, 3)
            engine.op_watch(1, 3)
            engine.op_watch(0, 2)
            stats = engine.op_stats()
            assert stats["parallel"]["workers"] == 2
            assert stats["parallel"]["pairs_per_shard"] == [2, 1]
            assert stats["watched_pairs"] == 3
        finally:
            engine.close()

    def test_single_process_stats_have_no_shard_list(self):
        engine = PathQueryEngine(small_graph(), default_k=3)
        stats = engine.op_stats()
        assert stats["parallel"] == {"workers": 1}
        engine.close()  # no-op, must not raise

    def test_watched_query_is_served_from_the_shard(self):
        engine = PathQueryEngine(small_graph(), default_k=3, workers=2)
        try:
            engine.op_watch(0, 3)
            result = engine.op_query(0, 3, 3)
            assert result["source"] == "watched"
            assert len(engine.cache) == 0  # never touched the cache
        finally:
            engine.close()

    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError):
            PathQueryEngine(small_graph(), workers=0)
