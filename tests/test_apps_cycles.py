"""Differential tests for the hop-constrained cycle monitor."""

import random

import pytest

from repro.apps.cycles import CycleMonitor
from repro.graph.digraph import DynamicDiGraph
from tests.conftest import make_random_graph


def brute_cycles(graph, center, k):
    """All simple cycles through ``center`` with at most k edges,
    in the monitor's canonical form (center, ..., center)."""
    out = set()
    if graph.has_edge(center, center):
        out.add((center, center))
    stack = [(center,)]
    while stack:
        path = stack.pop()
        tail = path[-1]
        if len(path) - 1 >= k:
            continue
        for y in graph.out_neighbors(tail):
            if y == center:
                if len(path) >= 2:
                    out.add(path + (center,))
            elif y not in path:
                stack.append(path + (y,))
    return out


class TestStaticAgreement:
    def test_triangle(self):
        g = DynamicDiGraph([(0, 1), (1, 2), (2, 0)])
        mon = CycleMonitor(g, 0, 3)
        assert mon.cycles() == {(0, 1, 2, 0)}
        assert mon.cycle_count() == 1

    def test_self_loop(self):
        g = DynamicDiGraph([(0, 0)])
        mon = CycleMonitor(g, 0, 1)
        assert mon.cycles() == {(0, 0)}

    def test_hop_constraint(self):
        g = DynamicDiGraph([(0, 1), (1, 2), (2, 3), (3, 0), (1, 0)])
        assert CycleMonitor(g, 0, 2).cycles() == {(0, 1, 0)}
        assert CycleMonitor(g, 0, 4).cycles() == {
            (0, 1, 0), (0, 1, 2, 3, 0)
        }

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            CycleMonitor(DynamicDiGraph(), 0, 0)

    def test_randomized_initial_state(self):
        rng = random.Random(3)
        for _ in range(30):
            g = make_random_graph(rng, max_edges=14)
            center = rng.choice(list(g.vertices()))
            k = rng.randint(1, 5)
            mon = CycleMonitor(g, center, k)
            assert mon.cycles() == brute_cycles(g, center, k)


class TestDynamicAgreement:
    def test_insert_closing_edge(self):
        g = DynamicDiGraph([(0, 1), (1, 2)])
        mon = CycleMonitor(g, 0, 3)
        result = mon.insert_edge(2, 0)
        assert set(result.new_cycles) == {(0, 1, 2, 0)}

    def test_insert_center_out_edge_spawns(self):
        g = DynamicDiGraph([(1, 0)])
        mon = CycleMonitor(g, 0, 2)
        result = mon.insert_edge(0, 1)
        assert set(result.new_cycles) == {(0, 1, 0)}

    def test_delete_center_out_edge_retires(self):
        g = DynamicDiGraph([(0, 1), (1, 0), (1, 2), (2, 0)])
        mon = CycleMonitor(g, 0, 3)
        result = mon.delete_edge(0, 1)
        assert set(result.deleted_cycles) == {(0, 1, 0), (0, 1, 2, 0)}
        assert mon.cycles() == set()

    def test_self_loop_updates(self):
        g = DynamicDiGraph(vertices=[0])
        mon = CycleMonitor(g, 0, 2)
        assert mon.insert_edge(0, 0).new_cycles == [(0, 0)]
        assert mon.cycle_count() == 1
        assert mon.delete_edge(0, 0).deleted_cycles == [(0, 0)]
        assert mon.cycle_count() == 0

    def test_noop_updates(self):
        g = DynamicDiGraph([(0, 1)])
        mon = CycleMonitor(g, 0, 2)
        assert mon.insert_edge(0, 1).new_cycles == []
        assert mon.delete_edge(5, 6).deleted_cycles == []

    def test_randomized_streams(self):
        rng = random.Random(13)
        for _ in range(25):
            g = make_random_graph(rng, n_lo=4, n_hi=7, max_edges=10)
            center = rng.choice(list(g.vertices()))
            k = rng.randint(1, 5)
            mon = CycleMonitor(g, center, k)
            current = brute_cycles(g, center, k)
            for _ in range(12):
                u, v = rng.sample(list(g.vertices()), 2)
                if rng.random() < 0.1:
                    v = u  # exercise self-loops at any vertex
                if g.has_edge(u, v):
                    result = mon.delete_edge(u, v)
                    fresh = brute_cycles(g, center, k)
                    assert set(result.deleted_cycles) == current - fresh
                    assert set(result.new_cycles) == set()
                else:
                    result = mon.insert_edge(u, v)
                    fresh = brute_cycles(g, center, k)
                    assert set(result.new_cycles) == fresh - current
                    assert set(result.deleted_cycles) == set()
                assert mon.cycle_count() == len(fresh)
                current = fresh
            assert mon.cycles() == current

    def test_delta_count(self):
        g = DynamicDiGraph([(0, 1), (1, 2)])
        mon = CycleMonitor(g, 0, 3)
        assert mon.insert_edge(2, 0).delta_count == 1
        assert mon.delete_edge(1, 2).delta_count == -1

    def test_repr(self):
        g = DynamicDiGraph([(0, 1), (1, 0)])
        assert "cycles=1" in repr(CycleMonitor(g, 0, 2))
