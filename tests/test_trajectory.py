"""Tests for the perf-trajectory ledger (:mod:`benchmarks.trajectory`)."""

import json
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent
if str(ROOT) not in sys.path:
    sys.path.insert(0, str(ROOT))

from benchmarks.trajectory import FIELDS, append_result, load_rows  # noqa: E402


def make_result(tmp_path, value=1000.0):
    payload = {
        "schema": "repro-bench/1",
        "benchmark": "ci_bench",
        "metrics": {
            "construction_s": {"value": 0.01, "unit": "seconds",
                               "direction": "lower"},
            "enumeration_paths_per_s": {"value": value, "unit": "paths/s",
                                        "direction": "higher"},
            "update_throughput_per_s": {"value": 500.0, "unit": "updates/s",
                                        "direction": "higher"},
        },
    }
    target = tmp_path / "result.json"
    target.write_text(json.dumps(payload), encoding="utf-8")
    return target


def test_append_creates_ledger_with_header(tmp_path):
    csv_path = tmp_path / "trajectory.csv"
    row = append_result(make_result(tmp_path), csv_path=csv_path,
                        date="2026-08-09", commit="abc1234")
    assert row["date"] == "2026-08-09"
    assert row["commit"] == "abc1234"
    header = csv_path.read_text(encoding="utf-8").splitlines()[0]
    assert header == ",".join(FIELDS)
    assert load_rows(csv_path) == [row]


def test_append_is_idempotent_per_date_and_commit(tmp_path):
    csv_path = tmp_path / "trajectory.csv"
    append_result(make_result(tmp_path, 1000.0), csv_path=csv_path,
                  date="2026-08-09", commit="abc1234")
    append_result(make_result(tmp_path, 2000.0), csv_path=csv_path,
                  date="2026-08-09", commit="abc1234")
    rows = load_rows(csv_path)
    assert len(rows) == 1
    assert float(rows[0]["enumeration_paths_per_s"]) == 2000.0


def test_append_accumulates_distinct_runs(tmp_path):
    csv_path = tmp_path / "trajectory.csv"
    append_result(make_result(tmp_path), csv_path=csv_path,
                  date="2026-08-08", commit="abc1234")
    append_result(make_result(tmp_path), csv_path=csv_path,
                  date="2026-08-09", commit="abc1234")
    append_result(make_result(tmp_path), csv_path=csv_path,
                  date="2026-08-09", commit="def5678")
    assert len(load_rows(csv_path)) == 3


def test_append_rejects_non_bench_payload(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "other"}), encoding="utf-8")
    with pytest.raises(ValueError, match="repro-bench/1"):
        append_result(bad, csv_path=tmp_path / "trajectory.csv")


def test_append_rejects_missing_metric(tmp_path):
    payload = {"schema": "repro-bench/1", "metrics": {}}
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(payload), encoding="utf-8")
    with pytest.raises(ValueError, match="missing metric"):
        append_result(bad, csv_path=tmp_path / "trajectory.csv")


def test_load_rejects_foreign_header(tmp_path):
    csv_path = tmp_path / "trajectory.csv"
    csv_path.write_text("a,b,c\n1,2,3\n", encoding="utf-8")
    with pytest.raises(ValueError, match="unexpected trajectory header"):
        load_rows(csv_path)


def test_committed_ledger_is_well_formed():
    rows = load_rows(ROOT / "benchmarks" / "results" / "trajectory.csv")
    assert rows, "the committed trajectory ledger must have a seed row"
    for row in rows:
        assert row["date"] and row["commit"]
        for name in FIELDS[2:]:
            assert float(row[name]) >= 0.0
