"""Tests for the warm-index LRU cache."""

import random

import pytest

from repro import obs
from repro.baselines.bruteforce import path_set
from repro.core.serialize import snapshot_size_bytes
from repro.graph.digraph import DynamicDiGraph, EdgeUpdate
from repro.obs import events
from repro.core.construction import build_index
from repro.core.enumerator import CpeEnumerator
from repro.service.cache import IndexCache, estimated_entry_bytes
from tests.conftest import make_random_graph, random_query


def chain_graph(n=8):
    return DynamicDiGraph([(i, i + 1) for i in range(n)] +
                          [(0, 2), (1, 3), (2, 4)])


class TestLookups:
    def test_miss_then_hit(self):
        cache = IndexCache(chain_graph())
        first = cache.get_or_build(0, 4, 4)
        second = cache.get_or_build(0, 4, 4)
        assert first.enumerator is second.enumerator
        assert first.outcome == "miss"
        assert second.outcome == "hit"
        stats = cache.stats()
        assert stats.misses == 1 and stats.hits == 1
        assert stats.entries == 1
        assert stats.hit_rate == 0.5

    def test_distinct_k_is_a_distinct_entry(self):
        cache = IndexCache(chain_graph())
        a = cache.get_or_build(0, 4, 3)
        b = cache.get_or_build(0, 4, 4)
        assert a.enumerator is not b.enumerator
        assert len(cache) == 2

    def test_cached_results_are_correct(self):
        g = chain_graph()
        cache = IndexCache(g)
        enum = cache.get_or_build(0, 4, 4).enumerator
        assert set(enum.startup()) == path_set(g, 0, 4, 4)


class TestOutcomeReporting:
    """``get_or_build`` must report its own call's outcome explicitly.

    Regression: callers used to infer the outcome from a post-call
    ``key in cache`` check, which misreports whenever the call's own
    path and the cache's final state disagree (e.g. an oversized entry
    is bypassed while a nested build caches a fitting entry under the
    same key).
    """

    def test_outcomes_cover_miss_hit_bypass(self):
        g = chain_graph()
        cache = IndexCache(g)
        assert cache.get_or_build(0, 4, 4).outcome == "miss"
        assert cache.get_or_build(0, 4, 4).outcome == "hit"
        tiny = IndexCache(g, budget_bytes=1)
        assert tiny.get_or_build(0, 4, 4).outcome == "bypass"

    def test_bypass_outcome_survives_nested_same_key_insert(self):
        # The build hook caches a fitting entry for the same key via a
        # nested lookup, then hands back an oversized enumerator.  The
        # outer call bypasses, yet ``key in cache`` is True afterwards —
        # the old inference would have reported "miss".
        g = chain_graph()
        fitting = CpeEnumerator.from_build(g, build_index(g, 0, 4, 4))
        budget = estimated_entry_bytes(fitting) + 1
        cache = IndexCache(g, budget_bytes=budget)

        from repro.core.index import IndexMemoryStats

        class Oversized(CpeEnumerator):
            def memory_stats(self):
                return IndexMemoryStats(
                    left_paths=budget, right_paths=budget, vertex_slots=budget
                )

        def build():
            cache.get_or_build(0, 4, 4)  # nested: caches a fitting entry
            return Oversized.from_build(g, build_index(g, 0, 4, 4))

        lookup = cache.get_or_build(0, 4, 4, build=build)
        assert (0, 4, 4) in cache
        assert lookup.outcome == "bypass"


class TestEvictionAndBudget:
    def test_lru_eviction_under_budget(self):
        g = chain_graph()
        probe = IndexCache(g)
        sizes = [
            estimated_entry_bytes(probe.get_or_build(s, t, 4).enumerator)
            for s, t in [(0, 4), (1, 5), (2, 6)]
        ]
        # Holds the first two entries, overflows when the third lands.
        cache = IndexCache(g, budget_bytes=sum(sizes) - 1)
        cache.get_or_build(0, 4, 4)
        cache.get_or_build(1, 5, 4)
        cache.get_or_build(0, 4, 4)          # refresh: (1,5,4) is now LRU
        cache.get_or_build(2, 6, 4)          # must evict something
        assert (0, 4, 4) in cache
        assert (1, 5, 4) not in cache
        assert cache.stats().evictions >= 1

    def test_oversized_entry_is_bypassed(self):
        g = chain_graph()
        cache = IndexCache(g, budget_bytes=1)
        lookup = cache.get_or_build(0, 4, 4)
        assert lookup.enumerator is not None
        assert lookup.outcome == "bypass"
        assert len(cache) == 0
        assert cache.stats().bypasses == 1

    def test_current_bytes_tracks_entries(self):
        g = chain_graph()
        cache = IndexCache(g)
        cache.get_or_build(0, 4, 4)
        stats = cache.stats()
        assert 0 < stats.current_bytes <= stats.budget_bytes
        cache.clear()
        assert cache.stats().current_bytes == 0
        assert cache.stats().entries == 0

    def test_invalidate(self):
        cache = IndexCache(chain_graph())
        cache.get_or_build(0, 4, 4)
        assert cache.invalidate((0, 4, 4))
        assert not cache.invalidate((0, 4, 4))
        assert cache.stats().current_bytes == 0

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            IndexCache(chain_graph(), budget_bytes=0)


class TestExplicitDropAccounting:
    """``invalidate``/``clear`` must keep the gauge and event log honest.

    Regression: both paths used to mutate ``_current_bytes`` without
    refreshing the ``service.cache.bytes`` gauge or emitting an event,
    so ``repro top`` and the ``metrics`` op reported stale occupancy
    until the next lookup.
    """

    @pytest.fixture(autouse=True)
    def _instrumented(self):
        prev_obs = obs.set_enabled(True)
        prev_events = events.set_enabled(True)
        obs.reset()
        events.reset()
        yield
        obs.set_enabled(prev_obs)
        events.set_enabled(prev_events)
        obs.reset()
        events.reset()

    @staticmethod
    def _bytes_gauge():
        return obs.snapshot()["gauges"].get("service.cache.bytes")

    def test_invalidate_refreshes_gauge_and_emits_event(self):
        cache = IndexCache(chain_graph())
        cache.get_or_build(0, 4, 4)
        cache.get_or_build(1, 5, 4)
        assert cache.invalidate((0, 4, 4))
        assert self._bytes_gauge() == cache.stats().current_bytes
        assert cache.stats().current_bytes > 0
        kinds = [event["kind"] for event in events.tail(50)]
        assert events.CACHE_INVALIDATE in kinds

    def test_invalidate_miss_emits_nothing(self):
        cache = IndexCache(chain_graph())
        cache.get_or_build(0, 4, 4)
        events.reset()
        assert not cache.invalidate((9, 9, 9))
        assert events.tail(50) == []

    def test_clear_zeroes_gauge_and_emits_event(self):
        cache = IndexCache(chain_graph())
        cache.get_or_build(0, 4, 4)
        cache.get_or_build(1, 5, 4)
        freed = cache.stats().current_bytes
        cache.clear()
        assert self._bytes_gauge() == 0
        clears = [
            event for event in events.tail(50)
            if event["kind"] == events.CACHE_CLEAR
        ]
        assert len(clears) == 1
        assert clears[0]["entries"] == 2
        assert clears[0]["freed_bytes"] == freed


class TestObserveAll:
    def test_cached_entries_follow_updates(self):
        g = chain_graph()
        cache = IndexCache(g)
        enum = cache.get_or_build(0, 4, 4).enumerator
        update = EdgeUpdate(0, 4, True)
        assert g.apply_update(update)
        cache.observe_all(update)
        assert set(enum.startup()) == path_set(g, 0, 4, 4)

    def test_randomized_consistency_under_streams(self):
        rng = random.Random(41)
        for _ in range(10):
            g = make_random_graph(rng, max_edges=14)
            cache = IndexCache(g)
            queries = []
            for _ in range(3):
                s, t, k = random_query(rng, g)
                cache.get_or_build(s, t, k)
                queries.append((s, t, k))
            for _ in range(8):
                u, v = rng.sample(list(g.vertices()), 2)
                update = EdgeUpdate(u, v, not g.has_edge(u, v))
                assert g.apply_update(update)
                cache.observe_all(update)
            for s, t, k in queries:
                entry = cache.peek((s, t, k))
                if entry is not None:
                    assert set(entry.startup()) == path_set(g, s, t, k), (
                        f"stale cache entry for {(s, t, k)}"
                    )

    def test_stats_dict_is_json_shaped(self):
        cache = IndexCache(chain_graph())
        cache.get_or_build(0, 4, 4)
        digest = cache.stats().as_dict()
        assert digest["entries"] == 1
        assert set(digest) >= {
            "hits", "misses", "evictions", "bypasses",
            "entries", "current_bytes", "budget_bytes", "hit_rate",
        }


class TestSizingHook:
    def test_graphless_size_is_smaller(self):
        g = chain_graph()
        cache = IndexCache(g)
        enum = cache.get_or_build(0, 4, 4).enumerator
        with_graph = snapshot_size_bytes(enum)
        without = snapshot_size_bytes(enum, include_graph=False)
        assert 0 < without < with_graph

    def test_size_matches_serialized_length(self):
        import json

        from repro.core.serialize import snapshot

        enum = IndexCache(chain_graph()).get_or_build(0, 4, 4).enumerator
        expected = len(
            json.dumps(snapshot(enum), separators=(",", ":")).encode()
        )
        assert snapshot_size_bytes(enum) == expected
