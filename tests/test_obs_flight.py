"""Units for the flight recorder, the time-series ring, and trace
stitching primitives (:mod:`repro.obs.flight`,
:mod:`repro.obs.timeseries`, :mod:`repro.obs.distributed`)."""

import sys
from pathlib import Path

import pytest

from repro.obs import flight as flight_mod
from repro.obs import spans as spans_mod
from repro.obs import timeseries as timeseries_mod
from repro.obs.distributed import (
    ProcessTrace,
    TraceContext,
    bind_context,
    current_context,
    merge_chrome_trace,
    new_span_id,
    new_trace_id,
    perf_offset,
    shift_instants,
    shift_spans,
)
from repro.obs.flight import (
    FLIGHT_SCHEMA,
    BurstDetector,
    FlightRecorder,
    validate_flight_bundle,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesRing
from repro.obs.trace import validate_chrome_trace

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from benchmarks.check_flight import check_flight  # noqa: E402


@pytest.fixture(autouse=True)
def _clean_process_slots():
    """Flight recorder and time-series slots start and end empty."""
    flight_mod.disable()
    previous_ring = timeseries_mod.install(None)
    yield
    flight_mod.disable()
    timeseries_mod.install(previous_ring)


# ---------------------------------------------------------------------------
# Trace contexts and ids
# ---------------------------------------------------------------------------


class TestTraceContext:
    def test_ids_are_distinct_and_wall_clock_free(self):
        ids = {new_trace_id() for _ in range(50)}
        ids |= {new_span_id() for _ in range(50)}
        assert len(ids) == 100
        for value in ids:
            assert value.startswith(("t-", "s-"))

    def test_child_keeps_trace_id_and_mints_parent_span(self):
        root = TraceContext.new_root(corr_id="q-1")
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.corr_id == "q-1"
        assert child.parent_span_id is not None
        assert child.parent_span_id != root.child().parent_span_id

    def test_bind_context_restores_on_exit(self):
        assert current_context() is None
        outer = TraceContext.new_root()
        inner = outer.child()
        with bind_context(outer):
            assert current_context() is outer
            with bind_context(inner):
                assert current_context() is inner
            assert current_context() is outer
        assert current_context() is None

    def test_perf_offset_is_the_ntp_midpoint(self):
        # Coordinator clock 100.0..100.2 around a worker reading 40.05:
        # midpoint 100.1, so worker time + offset lands there.
        offset = perf_offset(100.0, 100.2, 40.05)
        assert 40.05 + offset == pytest.approx(100.1)


class TestMergeChromeTrace:
    def _processes(self):
        coordinator = ProcessTrace(
            label="coordinator",
            pid=1000,
            spans=[("service.op.watch", 10.0, 0.5, 1)],
            instants=[("explain.cut", 10.1, 1, {"side": "L"})],
        )
        shard = ProcessTrace(
            label="shard 0",
            pid=2000,
            spans=shift_spans([["parallel.shard.dispatch", 3.0, 0.2, 1]], 7.1),
            instants=shift_instants([["explain.level", 3.1, 1, {}]], 7.1),
        )
        return [coordinator, shard]

    def test_merged_trace_validates_and_labels_processes(self):
        trace = merge_chrome_trace(self._processes())
        assert validate_chrome_trace(trace) == []
        metadata = [
            e for e in trace["traceEvents"] if e["name"] == "process_name"
        ]
        assert {e["pid"] for e in metadata} == {1000, 2000}
        assert {e["args"]["name"] for e in metadata} == {
            "coordinator", "shard 0",
        }

    def test_timestamps_rebase_to_global_minimum(self):
        trace = merge_chrome_trace(self._processes())
        events = [
            e for e in trace["traceEvents"] if e["cat"] != "__metadata"
        ]
        assert min(e["ts"] for e in events) == 0
        # The shard span started at 3.0 + 7.1 = 10.1 on the shared
        # clock; rebased against the coordinator span at 10.0.
        shard_span = next(e for e in events if e["pid"] == 2000 and
                          e["ph"] == "X")
        assert shard_span["ts"] == pytest.approx(0.1e6, abs=2)

    def test_metadata_passthrough(self):
        trace = merge_chrome_trace(self._processes(),
                                   metadata={"trace_id": "t-1-000001"})
        assert trace["metadata"]["trace_id"] == "t-1-000001"


# ---------------------------------------------------------------------------
# Time-series ring
# ---------------------------------------------------------------------------


class TestTimeSeriesRing:
    def test_counter_deltas_per_tick(self):
        registry = MetricsRegistry()
        counter = registry.counter("req")
        ring = TimeSeriesRing(registry, interval=1.0, capacity=8)
        counter.inc(3)
        ring.sample(now=1.0)
        counter.inc(2)
        ring.sample(now=2.0)
        ring.sample(now=3.0)
        assert ring.series("counters", "req") == [3.0, 2.0, 0.0]

    def test_histogram_percentiles_and_count_delta(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        ring = TimeSeriesRing(registry, interval=1.0, capacity=8)
        for v in (0.1, 0.2, 0.3):
            histogram.observe(v)
        ring.sample(now=1.0)
        histogram.observe(0.4)
        ring.sample(now=2.0)
        assert ring.series("histograms", "lat", "count") == [3.0, 1.0]
        p50 = ring.series("histograms", "lat", "p50")
        assert len(p50) == 2 and p50[0] > 0.0

    def test_capacity_trims_oldest(self):
        registry = MetricsRegistry()
        ring = TimeSeriesRing(registry, interval=1.0, capacity=3)
        for tick in range(6):
            ring.sample(now=float(tick))
        snapshot = ring.snapshot()
        assert len(snapshot["samples"]) == 3
        assert snapshot["total_samples"] == 6

    def test_snapshot_timestamps_relative_to_newest(self):
        registry = MetricsRegistry()
        ring = TimeSeriesRing(registry, interval=1.0, capacity=8)
        ring.sample(now=10.0)
        ring.sample(now=11.5)
        stamps = [s["ts"] for s in ring.snapshot()["samples"]]
        assert stamps == [pytest.approx(-1.5), pytest.approx(0.0)]

    def test_maybe_sample_respects_interval(self):
        registry = MetricsRegistry()
        ring = TimeSeriesRing(registry, interval=5.0, capacity=8)
        assert ring.maybe_sample(now=0.0) is True
        assert ring.maybe_sample(now=1.0) is False
        assert ring.maybe_sample(now=5.0) is True
        assert len(ring) == 2

    def test_module_slot_install_and_tick(self):
        registry = MetricsRegistry()
        ring = TimeSeriesRing(registry, interval=0.0001, capacity=4)
        assert timeseries_mod.maybe_sample() is False  # no ring installed
        previous = timeseries_mod.install(ring)
        assert previous is None
        assert timeseries_mod.current() is ring
        assert timeseries_mod.maybe_sample() is True


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_window_evicts_old_spans(self):
        recorder = FlightRecorder(window=10.0)
        recorder.record_span("old", 0.0, 1.0, 1)
        recorder.record_span("new", 20.0, 1.0, 1)
        names = [span[0] for span in recorder.spans(now=21.0)]
        assert names == ["new"]

    def test_max_spans_bounds_memory(self):
        recorder = FlightRecorder(window=1e6, max_spans=4)
        for i in range(10):
            recorder.record_span(f"s{i}", float(i), 0.1, 1)
        assert len(recorder) == 4

    def test_process_record_and_bundle_validate(self):
        recorder = FlightRecorder(window=30.0)
        recorder.record_span("service.op.query", 1.0, 0.2, 7)
        registry = MetricsRegistry()
        registry.counter("req").inc()
        record = recorder.process_record(registry, now=2.0)
        bundle = recorder.bundle("manual", [record])
        assert bundle["schema"] == FLIGHT_SCHEMA
        assert validate_flight_bundle(bundle) == []
        assert check_flight(bundle, reason="manual", min_processes=1) == []

    def test_installed_recorder_captures_spans(self):
        flight_mod.enable(window=30.0)
        with spans_mod.Span("flight.test", MetricsRegistry()):
            pass
        recorder = flight_mod.recorder()
        assert recorder is not None
        assert any(s[0] == "flight.test" for s in recorder.spans())
        flight_mod.disable()
        assert spans_mod.flight_sink() is None

    def test_disabled_process_record_is_still_bundleable(self):
        registry = MetricsRegistry()
        record = flight_mod.process_record(registry, role="shard", shard=3)
        assert record["window_seconds"] == 0.0
        bundle = flight_mod.bundle("wire", [record])
        assert validate_flight_bundle(bundle) == []

    def test_validate_rejects_malformed_bundles(self):
        assert validate_flight_bundle([]) != []
        assert validate_flight_bundle({"schema": "nope"}) != []
        bad_proc = {
            "schema": FLIGHT_SCHEMA,
            "reason": "manual",
            "generated_at": 0.0,
            "processes": [{"pid": "x", "role": "pilot"}],
        }
        problems = validate_flight_bundle(bad_proc)
        assert any("pid" in p for p in problems)
        assert any("role" in p for p in problems)

    def test_check_flight_reason_and_process_floor(self):
        recorder = FlightRecorder()
        registry = MetricsRegistry()
        bundle = recorder.bundle(
            "manual", [recorder.process_record(registry)]
        )
        assert check_flight(bundle, reason="shard-crash") != []
        assert check_flight(bundle, min_processes=2) != []


class TestBurstDetector:
    def test_fires_on_threshold_within_horizon(self):
        detector = BurstDetector(threshold=3, horizon=10.0)
        assert detector.note(1.0) is False
        assert detector.note(2.0) is False
        assert detector.note(3.0) is True

    def test_old_marks_age_out(self):
        detector = BurstDetector(threshold=3, horizon=5.0)
        detector.note(0.0)
        detector.note(1.0)
        # The first two fall outside the horizon by now.
        assert detector.note(20.0) is False

    def test_resets_after_firing(self):
        detector = BurstDetector(threshold=2, horizon=10.0)
        assert detector.note(1.0) is False
        assert detector.note(2.0) is True
        # A fresh burst is needed to fire again.
        assert detector.note(3.0) is False
        assert detector.note(4.0) is True
