"""Unit tests for the join plan."""

import pytest

from repro.core.plan import JoinPlan, balanced_plan, plan_from_growth


class TestValidation:
    def test_empty_plan_for_small_k(self):
        assert JoinPlan(0, ()).pairs == ()
        assert JoinPlan(1, ()).pairs == ()

    def test_small_k_rejects_pairs(self):
        with pytest.raises(ValueError):
            JoinPlan(1, ((1, 1),))

    def test_must_start_at_one_one(self):
        with pytest.raises(ValueError, match="start"):
            JoinPlan(3, ((2, 1), (2, 2)))

    def test_steps_must_grow_one_side(self):
        with pytest.raises(ValueError, match="grow one side"):
            JoinPlan(4, ((1, 1), (2, 2)))

    def test_final_pair_must_sum_to_k(self):
        with pytest.raises(ValueError, match="sum to k"):
            JoinPlan(5, ((1, 1), (2, 1)))

    def test_negative_k(self):
        with pytest.raises(ValueError):
            JoinPlan(-1, ())

    def test_valid_plan(self):
        plan = JoinPlan(4, ((1, 1), (2, 1), (2, 2)))
        assert plan.l == 2
        assert plan.r == 2


class TestLookups:
    plan = JoinPlan(5, ((1, 1), (1, 2), (2, 2), (3, 2)))

    def test_pair_for_length(self):
        assert self.plan.pair_for_length(2) == (1, 1)
        assert self.plan.pair_for_length(4) == (2, 2)
        assert self.plan.pair_for_length(5) == (3, 2)

    def test_lengths_cover_2_to_k(self):
        assert sorted(self.plan.lengths()) == [2, 3, 4, 5]

    def test_iteration_and_len(self):
        assert len(self.plan) == 4
        assert list(self.plan)[0] == (1, 1)

    def test_l_r_zero_when_empty(self):
        empty = JoinPlan(1, ())
        assert empty.l == 0
        assert empty.r == 0


class TestBalancedPlan:
    @pytest.mark.parametrize("k", range(2, 10))
    def test_final_cut_is_ceil_half(self, k):
        plan = balanced_plan(k)
        assert plan.l == (k + 1) // 2
        assert plan.r == k // 2

    def test_every_length_covered_once(self):
        plan = balanced_plan(7)
        assert sorted(i + j for i, j in plan) == list(range(2, 8))

    def test_k_one_empty(self):
        assert balanced_plan(1).pairs == ()


class TestPlanFromGrowth:
    def test_growth_sequence(self):
        plan = plan_from_growth(4, ["left", "right"])
        assert plan.pairs == ((1, 1), (2, 1), (2, 2))

    def test_wrong_number_of_steps(self):
        with pytest.raises(ValueError):
            plan_from_growth(5, ["left"])

    def test_unknown_side(self):
        with pytest.raises(ValueError, match="unknown growth side"):
            plan_from_growth(3, ["sideways"])
