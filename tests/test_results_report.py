"""Tests for MaintainedResultSet and the markdown report builder."""

import random

import pytest

from repro.core.enumerator import CpeEnumerator
from repro.core.results import MaintainedResultSet
from repro.experiments.report import build_report, load_csv, summarize
from repro.graph.digraph import DynamicDiGraph
from tests.conftest import make_random_graph, random_query


class TestMaintainedResultSet:
    def make(self):
        g = DynamicDiGraph([(0, 1), (1, 2), (0, 2), (2, 3)])
        return MaintainedResultSet(CpeEnumerator(g, 0, 3, 3))

    def test_initial_state(self):
        rs = self.make()
        assert len(rs) == 2
        assert (0, 2, 3) in rs
        assert rs.length_histogram() == {2: 1, 3: 1}

    def test_insert_folds_in(self):
        rs = self.make()
        rs.insert_edge(0, 3)
        assert rs.count() == 3
        assert rs.length_histogram()[1] == 1
        assert rs.shortest() == (0, 3)

    def test_delete_folds_out(self):
        rs = self.make()
        rs.delete_edge(2, 3)
        assert rs.count() == 0
        assert rs.shortest() is None
        assert rs.length_histogram() == {}

    def test_aggregate(self):
        rs = self.make()
        assert rs.aggregate(lambda p: 1.0) == pytest.approx(2.0)
        assert rs.aggregate(lambda p: len(p) - 1) == pytest.approx(5.0)

    def test_apply_and_iteration(self):
        from repro.graph.digraph import EdgeUpdate

        rs = self.make()
        rs.apply(EdgeUpdate(0, 3, True))
        assert set(rs) == rs.paths()

    def test_audit_after_random_stream(self):
        rng = random.Random(41)
        for _ in range(20):
            g = make_random_graph(rng, max_edges=14)
            s, t, k = random_query(rng, g)
            rs = MaintainedResultSet(CpeEnumerator(g, s, t, k))
            for _ in range(12):
                u, v = rng.sample(list(g.vertices()), 2)
                if g.has_edge(u, v):
                    rs.delete_edge(u, v)
                else:
                    rs.insert_edge(u, v)
            assert rs.audit()


@pytest.fixture
def csv_dir(tmp_path):
    from repro.cli import main

    code = main(
        [
            "experiment", "density",
            "--updates", "6", "--seed", "3", "--csv",
            "--save", str(tmp_path),
        ]
    )
    assert code == 0
    (tmp_path / "fig7.csv").write_text(
        "Dataset,CPE mean,CPE p99.9,PathEnum mean,PathEnum p99.9,"
        "CSM* mean,CSM* p99.9,Δ|P| avg\n"
        "XX,0.1,0.5,10,20,30,60,2\n"
        "YY,0.2,0.9,4,8,6,9,1\n",
        encoding="utf-8",
    )
    return tmp_path


class TestReport:
    def test_load_csv(self, csv_dir):
        rows = load_csv(csv_dir / "fig7.csv")
        assert rows[0]["Dataset"] == "XX"

    def test_summarize_fig7_speedups(self, csv_dir):
        rows = load_csv(csv_dir / "fig7.csv")
        lines = summarize("fig7", rows)
        assert any("100.0x" in line for line in lines)  # 10 / 0.1

    def test_build_report(self, csv_dir):
        report = build_report(csv_dir, title="Test run")
        assert report.startswith("# Test run")
        assert "## fig7" in report
        assert "## density" in report
        assert "| Dataset |" in report

    def test_build_report_empty_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no known experiment"):
            build_report(tmp_path)

    def test_report_main(self, csv_dir, tmp_path, capsys):
        from repro.experiments.report import main as report_main

        out = tmp_path / "report.md"
        assert report_main([str(csv_dir), str(out)]) == 0
        assert out.exists()
        assert report_main([]) == 2

    def test_summarize_unknown_columns_fallback(self):
        assert summarize("table1", [{"a": "1"}]) == ["- 1 rows"]
        assert summarize("fig9", []) == ["- (empty table)"]
