"""Planner equivalence gate: every mode answers byte-identically.

The cost-based planner is allowed to change *how* an ad-hoc query is
executed (warm cache, full index build, or one-shot direct join) but
never *what* it answers: the direct plan runs the identical
``build_index`` + ``enumerate_full_list`` pipeline, so for a fixed-seed
workload of interleaved queries, repeats and graph updates the encoded
answers of ``--planner auto`` and ``--planner direct`` must equal
``--planner index`` byte for byte.  Only the ``source`` label (and
latency) may differ.  CI runs this file as a standalone gate.
"""

import json
import random

from repro.graph.digraph import DynamicDiGraph
from repro.planner import PLANNER_MODES
from repro.service.engine import PathQueryEngine
from tests.conftest import make_random_graph, random_query

SEED = 20260809


def build_workload(seed=SEED, steps=60):
    """A deterministic interleaving of queries, repeats and updates."""
    rng = random.Random(seed)
    proto = make_random_graph(rng, n_lo=8, n_hi=10, max_edges=26)
    edges = list(proto.edges())
    vertices = list(proto.vertices())
    ops = []
    recent = []
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.45 or not recent:
            s, t, k = random_query(rng, proto, k_hi=6)
            recent.append((s, t, k))
            ops.append(("query", s, t, k))
        elif roll < 0.75:
            ops.append(("query", *rng.choice(recent)))  # repeat a hot key
        else:
            u, v = rng.sample(vertices, 2)
            ops.append(("update", u, v))
    return edges, vertices, ops


def run_workload(mode, edges, vertices, ops):
    """Execute the workload; answers as canonical JSON, sources aside."""
    graph = DynamicDiGraph(list(edges), vertices=list(vertices))
    engine = PathQueryEngine(graph, planner=mode)
    answers = []
    sources = []
    for op in ops:
        if op[0] == "query":
            _, s, t, k = op
            result = engine.op_query(s=s, t=t, k=k)
            sources.append(result.pop("source"))
            answers.append(
                json.dumps(result, sort_keys=True, separators=(",", ":"))
            )
        else:
            _, u, v = op
            insert = not graph.has_edge(u, v)
            result = engine.op_update(u=u, v=v, insert=insert)
            answers.append(
                json.dumps(result, sort_keys=True, separators=(",", ":"))
            )
    return answers, sources


def test_all_modes_answer_byte_identically():
    edges, vertices, ops = build_workload()
    queries = sum(1 for op in ops if op[0] == "query")
    assert queries >= 20, "workload must actually exercise queries"
    baseline, _ = run_workload("index", edges, vertices, ops)
    for mode in PLANNER_MODES:
        answers, _ = run_workload(mode, edges, vertices, ops)
        assert answers == baseline, f"mode {mode!r} diverged from index"


def test_auto_mode_actually_uses_both_plans():
    # The gate above would pass vacuously if auto never chose direct (or
    # never chose index); pin that the workload exercises both.
    edges, vertices, ops = build_workload()
    _, sources = run_workload("auto", edges, vertices, ops)
    assert "direct" in sources
    assert any(source in ("miss", "hit") for source in sources)


def test_workload_is_deterministic():
    first = build_workload()
    second = build_workload()
    assert first == second
