"""Tests for the temporal stream substrate and the frozen graph view."""

import random

import pytest

from repro.baselines.bruteforce import path_set
from repro.baselines.pathenum import PathEnumEnumerator
from repro.baselines.tdfs import TDfsEnumerator
from repro.core.construction import build_index
from repro.core.enumeration import enumerate_full
from repro.graph.digraph import DynamicDiGraph
from repro.graph.frozen import FrozenDiGraph
from repro.graph.temporal import (
    TemporalEdge,
    bursty_stream,
    poisson_stream,
    replay_window,
)
from tests.conftest import make_random_graph, random_query


class TestPoissonStream:
    def test_count_and_monotone_timestamps(self):
        stream = poisson_stream(range(10), rate=2.0, count=50, seed=1)
        assert len(stream) == 50
        times = [e.timestamp for e in stream]
        assert times == sorted(times)

    def test_rate_controls_density(self):
        slow = poisson_stream(range(10), rate=1.0, count=200, seed=2)
        fast = poisson_stream(range(10), rate=10.0, count=200, seed=2)
        assert fast[-1].timestamp < slow[-1].timestamp

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_stream(range(10), rate=0, count=5)
        with pytest.raises(ValueError):
            poisson_stream([1], rate=1.0, count=5)

    def test_as_tuple(self):
        edge = TemporalEdge(1, 2, 3.5)
        assert edge.as_tuple() == (1, 2, 3.5)


class TestBurstyStream:
    def test_bursts_compress_time(self):
        calm = bursty_stream(range(10), 1.0, 20.0, 0.0, 300, seed=3)
        wild = bursty_stream(range(10), 1.0, 20.0, 0.9, 300, seed=3)
        assert wild[-1].timestamp < calm[-1].timestamp

    def test_validation(self):
        with pytest.raises(ValueError):
            bursty_stream(range(5), 1.0, 2.0, 1.5, 10)
        with pytest.raises(ValueError):
            bursty_stream(range(5), 0.0, 2.0, 0.5, 10)


class TestReplayWindow:
    def test_insert_then_expire(self):
        g = DynamicDiGraph(vertices=range(4))
        stream = [TemporalEdge(0, 1, 0.0), TemporalEdge(2, 3, 10.0)]
        events = list(replay_window(g, stream, window=5.0))
        kinds = [(upd.edge, upd.insert) for _, upd in events]
        assert kinds == [
            ((0, 1), True), ((0, 1), False), ((2, 3), True), ((2, 3), False),
        ]

    def test_rearrival_refreshes(self):
        g = DynamicDiGraph(vertices=range(2))
        stream = [
            TemporalEdge(0, 1, 0.0),
            TemporalEdge(0, 1, 4.0),
            TemporalEdge(1, 0, 12.0),
        ]
        events = list(replay_window(g, stream, window=5.0))
        # (0,1) inserted once, expires at 9 (refreshed), not at 5
        del_times = [
            ts for ts, upd in events if not upd.insert and upd.edge == (0, 1)
        ]
        assert del_times == [9.0]

    def test_initial_edges_never_expire(self):
        g = DynamicDiGraph([(5, 6)])
        stream = [TemporalEdge(0, 1, 0.0)]
        events = list(replay_window(g, stream, window=1.0))
        assert all(upd.edge != (5, 6) for _, upd in events)

    def test_replay_is_a_valid_update_stream(self):
        rng = random.Random(4)
        g = DynamicDiGraph(vertices=range(8))
        stream = poisson_stream(range(8), rate=3.0, count=60, seed=5)
        replay = g.copy()
        for _, upd in replay_window(g, stream, window=2.0):
            assert replay.apply_update(upd), f"invalid {upd}"

    def test_window_validation(self):
        with pytest.raises(ValueError):
            list(replay_window(DynamicDiGraph(), [], window=0.0))


class TestFrozenDiGraph:
    def test_read_api_matches_source(self):
        rng = random.Random(6)
        g = make_random_graph(rng, max_edges=20)
        frozen = FrozenDiGraph(g)
        assert frozen.num_vertices == g.num_vertices
        assert frozen.num_edges == g.num_edges
        assert set(frozen.edges()) == set(g.edges())
        for v in g.vertices():
            assert set(frozen.out_neighbors(v)) == set(g.out_neighbors(v))
            assert set(frozen.in_neighbors(v)) == set(g.in_neighbors(v))
            assert frozen.degree(v) == g.degree(v)

    def test_snapshot_is_independent(self):
        g = DynamicDiGraph([(0, 1)])
        frozen = FrozenDiGraph(g)
        g.add_edge(1, 2)
        assert not frozen.has_edge(1, 2)

    def test_no_mutation_api(self):
        frozen = FrozenDiGraph(DynamicDiGraph([(0, 1)]))
        assert not hasattr(frozen, "add_edge")
        assert not hasattr(frozen, "remove_edge")

    def test_thaw_round_trip(self):
        g = DynamicDiGraph([(0, 1), (1, 2)], vertices=[9])
        assert FrozenDiGraph(g).thaw() == g

    def test_reverse_view(self):
        frozen = FrozenDiGraph(DynamicDiGraph([(0, 1)]))
        r = frozen.reverse_view()
        assert r.has_edge(1, 0)
        assert set(r.out_neighbors(1)) == {0}

    def test_static_enumerators_accept_frozen(self):
        rng = random.Random(7)
        for _ in range(15):
            g = make_random_graph(rng, max_edges=16)
            s, t, k = random_query(rng, g)
            frozen = FrozenDiGraph(g)
            want = path_set(g, s, t, k)
            assert set(TDfsEnumerator(frozen, s, t, k).paths()) == want
            assert set(PathEnumEnumerator(frozen, s, t, k).paths()) == want
            built = build_index(frozen, s, t, k)
            assert set(enumerate_full(built.index)) == want
