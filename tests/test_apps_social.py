"""Tests for the social-network tie-strength application."""

import random

import pytest

from repro.apps.social import TieStrengthMonitor
from repro.baselines.bruteforce import path_set
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import preferential_attachment_graph


def katz(paths, beta):
    return sum(beta ** (len(p) - 1) for p in paths)


class TestTieStrengthMonitor:
    def make(self):
        g = DynamicDiGraph([(0, 1), (1, 2), (0, 2), (2, 3)])
        return TieStrengthMonitor(g, max_hops=3, beta=0.5)

    def test_beta_validation(self):
        g = DynamicDiGraph()
        with pytest.raises(ValueError):
            TieStrengthMonitor(g, beta=1.0)
        with pytest.raises(ValueError):
            TieStrengthMonitor(g, beta=0.0)

    def test_initial_strength(self):
        mon = self.make()
        got = mon.watch(0, 2)
        want = katz(path_set(mon.graph, 0, 2, 3), 0.5)
        assert got == pytest.approx(want)
        assert mon.connection_count(0, 2) == 2

    def test_follow_increases_strength(self):
        mon = self.make()
        before = mon.watch(0, 3)
        deltas = mon.follow(0, 3)
        assert deltas[(0, 3)] == pytest.approx(0.5)
        assert mon.strength(0, 3) == pytest.approx(before + 0.5)

    def test_unfollow_decreases_strength(self):
        mon = self.make()
        mon.watch(0, 2)
        deltas = mon.unfollow(0, 2)  # removes the direct path, weight 0.5
        assert deltas[(0, 2)] == pytest.approx(-0.5)

    def test_unaffected_pairs_get_no_delta(self):
        mon = self.make()
        mon.watch(0, 2)
        mon.watch(2, 3)
        deltas = mon.follow(1, 3)  # does not touch (2, 3)... or (0, 2)
        assert (2, 3) not in deltas
        assert (0, 2) not in deltas

    def test_ranking(self):
        mon = self.make()
        mon.watch(0, 2)
        mon.watch(0, 3)
        ranking = mon.ranking()
        assert ranking[0][0] == (0, 2)
        assert ranking[0][1] >= ranking[1][1]

    def test_audit_after_churn(self):
        rng = random.Random(4)
        g = preferential_attachment_graph(60, 2, seed=5)
        mon = TieStrengthMonitor(g, max_hops=4, beta=0.4)
        mon.watch(0, 30)
        mon.watch(1, 45)
        users = list(g.vertices())
        for _ in range(100):
            u, v = rng.sample(users, 2)
            if g.has_edge(u, v):
                mon.unfollow(u, v)
            else:
                mon.follow(u, v)
        assert mon.audit() < 1e-9

    def test_connection_count_tracks(self):
        mon = self.make()
        mon.watch(0, 3)
        count = mon.connection_count(0, 3)
        mon.follow(0, 3)
        assert mon.connection_count(0, 3) == count + 1
        assert mon.connection_count(0, 3) == len(
            path_set(mon.graph, 0, 3, 3)
        )
