"""Tests for enumerator snapshot / restore."""

import json
import random

import pytest

from repro.baselines.bruteforce import path_set
from repro.core.enumerator import CpeEnumerator
from repro.core.serialize import (
    load_enumerator,
    restore,
    save_enumerator,
    snapshot,
)
from repro.graph.digraph import DynamicDiGraph, EdgeUpdate
from tests.conftest import make_random_graph, random_query
from tests.test_maintenance_insert import assert_index_matches_fresh


def make_cpe():
    g = DynamicDiGraph([(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)])
    cpe = CpeEnumerator(g, 0, 3, 3)
    cpe.startup()
    return cpe


class TestSnapshotRestore:
    def test_round_trip_preserves_results(self):
        cpe = make_cpe()
        clone = restore(snapshot(cpe))
        assert set(clone.startup()) == set(cpe.startup())
        assert clone.plan.pairs == cpe.plan.pairs
        assert clone.index.direct_edge == cpe.index.direct_edge

    def test_round_trip_preserves_index_exactly(self):
        cpe = make_cpe()
        clone = restore(snapshot(cpe))
        assert clone.index.left.as_dict() == cpe.index.left.as_dict()
        assert clone.index.right.as_dict() == cpe.index.right.as_dict()

    def test_restored_enumerator_handles_updates(self):
        cpe = make_cpe()
        clone = restore(snapshot(cpe))
        result = clone.delete_edge(1, 2)
        assert set(result.paths) == {(0, 1, 2, 3)}
        assert_index_matches_fresh(clone)

    def test_snapshot_is_json_serializable(self):
        state = snapshot(make_cpe())
        json.dumps(state)  # must not raise

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not a CPE snapshot"):
            restore({"format": "something-else"})

    def test_rejects_wrong_version(self):
        state = snapshot(make_cpe())
        state["version"] = 99
        with pytest.raises(ValueError, match="unsupported"):
            restore(state)

    def test_file_round_trip(self, tmp_path):
        cpe = make_cpe()
        target = tmp_path / "cpe.json"
        save_enumerator(cpe, target)
        clone = load_enumerator(target)
        assert set(clone.startup()) == set(cpe.startup())

    def test_isolated_vertices_survive(self, tmp_path):
        g = DynamicDiGraph([(0, 1)], vertices=[7])
        cpe = CpeEnumerator(g, 0, 1, 2)
        clone = restore(snapshot(cpe))
        assert clone.graph.has_vertex(7)

    def test_restored_enumerator_matches_original_update_results(self):
        """Original and restored clone agree update-by-update.

        The service layer restores warm indexes from snapshots; a
        restored enumerator must not merely hold the same paths but
        produce *identical UpdateResults* (the same delta paths for the
        same updates) under any subsequent stream.
        """
        rng = random.Random(91)
        for _ in range(10):
            g = make_random_graph(rng, max_edges=14)
            s, t, k = random_query(rng, g)
            cpe = CpeEnumerator(g, s, t, k)
            clone = restore(snapshot(cpe))
            for _ in range(12):
                u, v = rng.sample(list(g.vertices()), 2)
                insert = not g.has_edge(u, v)
                original = cpe.apply(EdgeUpdate(u, v, insert))
                mirrored = clone.apply(EdgeUpdate(u, v, insert))
                assert mirrored.changed == original.changed
                assert set(mirrored.paths) == set(original.paths), (
                    f"delta divergence on e({u}, {v}, "
                    f"{'+' if insert else '-'}) for q({s}, {t}, {k})"
                )
            assert set(clone.startup()) == set(cpe.startup())

    def test_snapshot_size_bytes_hook(self):
        from repro.core.serialize import snapshot_size_bytes

        cpe = make_cpe()
        full = snapshot_size_bytes(cpe)
        slim = snapshot_size_bytes(cpe, include_graph=False)
        assert 0 < slim < full
        assert full == len(
            json.dumps(snapshot(cpe), separators=(",", ":")).encode("utf-8")
        )

    def test_randomized_round_trips_after_updates(self):
        rng = random.Random(55)
        for _ in range(15):
            g = make_random_graph(rng)
            s, t, k = random_query(rng, g)
            cpe = CpeEnumerator(g, s, t, k)
            for _ in range(6):
                u, v = rng.sample(list(g.vertices()), 2)
                if g.has_edge(u, v):
                    cpe.delete_edge(u, v)
                else:
                    cpe.insert_edge(u, v)
            clone = restore(snapshot(cpe))
            assert set(clone.startup()) == path_set(g, s, t, k)
            # and the clone keeps working independently
            u, v = rng.sample(list(clone.graph.vertices()), 2)
            if not clone.graph.has_edge(u, v):
                result = clone.insert_edge(u, v)
                fresh = path_set(clone.graph, s, t, k)
                assert set(result.paths) == fresh - path_set(g, s, t, k)
