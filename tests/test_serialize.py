"""Tests for enumerator snapshot / restore."""

import json
import random

import pytest

from repro.baselines.bruteforce import path_set
from repro.core.enumerator import CpeEnumerator
from repro.core.serialize import (
    graph_snapshot,
    load_enumerator,
    restore,
    restore_graph,
    save_enumerator,
    snapshot,
)
from repro.graph.digraph import DynamicDiGraph, EdgeUpdate
from tests.conftest import make_random_graph, random_query
from tests.test_maintenance_insert import assert_index_matches_fresh


def make_cpe():
    g = DynamicDiGraph([(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)])
    cpe = CpeEnumerator(g, 0, 3, 3)
    cpe.startup()
    return cpe


class TestSnapshotRestore:
    def test_round_trip_preserves_results(self):
        cpe = make_cpe()
        clone = restore(snapshot(cpe))
        assert set(clone.startup()) == set(cpe.startup())
        assert clone.plan.pairs == cpe.plan.pairs
        assert clone.index.direct_edge == cpe.index.direct_edge

    def test_round_trip_preserves_index_exactly(self):
        cpe = make_cpe()
        clone = restore(snapshot(cpe))
        assert clone.index.left.as_dict() == cpe.index.left.as_dict()
        assert clone.index.right.as_dict() == cpe.index.right.as_dict()

    def test_restored_enumerator_handles_updates(self):
        cpe = make_cpe()
        clone = restore(snapshot(cpe))
        result = clone.delete_edge(1, 2)
        assert set(result.paths) == {(0, 1, 2, 3)}
        assert_index_matches_fresh(clone)

    def test_snapshot_is_json_serializable(self):
        state = snapshot(make_cpe())
        json.dumps(state)  # must not raise

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not a CPE snapshot"):
            restore({"format": "something-else"})

    def test_rejects_wrong_version(self):
        state = snapshot(make_cpe())
        state["version"] = 99
        with pytest.raises(ValueError, match="unsupported"):
            restore(state)

    def test_file_round_trip(self, tmp_path):
        cpe = make_cpe()
        target = tmp_path / "cpe.json"
        save_enumerator(cpe, target)
        clone = load_enumerator(target)
        assert set(clone.startup()) == set(cpe.startup())

    def test_isolated_vertices_survive(self, tmp_path):
        g = DynamicDiGraph([(0, 1)], vertices=[7])
        cpe = CpeEnumerator(g, 0, 1, 2)
        clone = restore(snapshot(cpe))
        assert clone.graph.has_vertex(7)

    def test_restored_enumerator_matches_original_update_results(self):
        """Original and restored clone agree update-by-update.

        The service layer restores warm indexes from snapshots; a
        restored enumerator must not merely hold the same paths but
        produce *identical UpdateResults* (the same delta paths for the
        same updates) under any subsequent stream.
        """
        rng = random.Random(91)
        for _ in range(10):
            g = make_random_graph(rng, max_edges=14)
            s, t, k = random_query(rng, g)
            cpe = CpeEnumerator(g, s, t, k)
            clone = restore(snapshot(cpe))
            for _ in range(12):
                u, v = rng.sample(list(g.vertices()), 2)
                insert = not g.has_edge(u, v)
                original = cpe.apply(EdgeUpdate(u, v, insert))
                mirrored = clone.apply(EdgeUpdate(u, v, insert))
                assert mirrored.changed == original.changed
                assert set(mirrored.paths) == set(original.paths), (
                    f"delta divergence on e({u}, {v}, "
                    f"{'+' if insert else '-'}) for q({s}, {t}, {k})"
                )
            assert set(clone.startup()) == set(cpe.startup())

    def test_snapshot_size_bytes_hook(self):
        from repro.core.serialize import snapshot_size_bytes

        cpe = make_cpe()
        full = snapshot_size_bytes(cpe)
        slim = snapshot_size_bytes(cpe, include_graph=False)
        assert 0 < slim < full
        assert full == len(
            json.dumps(snapshot(cpe), separators=(",", ":")).encode("utf-8")
        )

    def test_randomized_round_trips_after_updates(self):
        rng = random.Random(55)
        for _ in range(15):
            g = make_random_graph(rng)
            s, t, k = random_query(rng, g)
            cpe = CpeEnumerator(g, s, t, k)
            for _ in range(6):
                u, v = rng.sample(list(g.vertices()), 2)
                if g.has_edge(u, v):
                    cpe.delete_edge(u, v)
                else:
                    cpe.insert_edge(u, v)
            clone = restore(snapshot(cpe))
            assert set(clone.startup()) == path_set(g, s, t, k)
            # and the clone keeps working independently
            u, v = rng.sample(list(clone.graph.vertices()), 2)
            if not clone.graph.has_edge(u, v):
                result = clone.insert_edge(u, v)
                fresh = path_set(clone.graph, s, t, k)
                assert set(result.paths) == fresh - path_set(g, s, t, k)


class TestGraphSnapshotV2:
    """The packed-CSR graph snapshot (format v2) and v1 compatibility."""

    def test_v2_payload_shape(self):
        g = DynamicDiGraph([(0, 1), (1, 2), (0, 2)])
        state = graph_snapshot(g)
        assert state["format"] == "repro/graph-snapshot"
        assert state["version"] == 2
        assert state["vertices"] == [0, 1, 2]
        assert state["indptr"] == [0, 2, 3, 3]
        # indices are positions into `vertices`, so the payload is
        # self-contained for arbitrary vertex labels
        assert state["indices"] == [1, 2, 2]
        json.dumps(state)  # JSON-representable

    def test_round_trip_preserves_structure_and_order(self):
        rng = random.Random(99)
        g = make_random_graph(rng)
        r = restore_graph(graph_snapshot(g))
        assert list(r.vertices()) == list(g.vertices())
        assert list(r.edges()) == list(g.edges())
        for v in g.vertices():
            assert list(r.out_neighbors(v)) == list(g.out_neighbors(v))

    def test_round_trip_is_a_fixed_point(self):
        rng = random.Random(7)
        g = make_random_graph(rng)
        state = graph_snapshot(g)
        assert graph_snapshot(restore_graph(state)) == state

    def test_round_trip_after_updates(self):
        rng = random.Random(31)
        g = make_random_graph(rng)
        vs = list(g.vertices())
        for _ in range(25):
            u, v = rng.sample(vs, 2)
            if g.has_edge(u, v):
                g.remove_edge(u, v)
            else:
                g.add_edge(u, v)
        r = restore_graph(graph_snapshot(g))
        assert list(r.edges()) == list(g.edges())
        assert graph_snapshot(r) == graph_snapshot(g)

    def test_empty_graph(self):
        r = restore_graph(graph_snapshot(DynamicDiGraph()))
        assert r.num_vertices == 0
        assert r.num_edges == 0

    def test_self_loop_and_isolated_vertex(self):
        g = DynamicDiGraph()
        g.add_edge("a", "a")
        g.add_vertex("b")
        r = restore_graph(graph_snapshot(g))
        assert list(r.vertices()) == ["a", "b"]
        assert list(r.edges()) == [("a", "a")]

    def test_v1_payload_still_restores_identically(self):
        rng = random.Random(13)
        g = make_random_graph(rng)
        v1 = {
            "format": "repro/graph-snapshot",
            "version": 1,
            "vertices": list(g.vertices()),
            "edges": [list(e) for e in g.edges()],
        }
        from_v1 = restore_graph(v1)
        from_v2 = restore_graph(graph_snapshot(g))
        assert list(from_v1.vertices()) == list(from_v2.vertices())
        assert list(from_v1.edges()) == list(from_v2.edges())
        for v in g.vertices():
            assert list(from_v1.out_neighbors(v)) == list(
                from_v2.out_neighbors(v)
            )
            assert list(from_v1.in_neighbors(v)) == list(
                from_v2.in_neighbors(v)
            )

    def test_rejects_wrong_graph_version(self):
        g = DynamicDiGraph([(0, 1)])
        state = graph_snapshot(g)
        state["version"] = 99
        with pytest.raises(ValueError, match="version"):
            restore_graph(state)

    def test_rejects_wrong_graph_format(self):
        with pytest.raises(ValueError, match="not a graph snapshot"):
            restore_graph({"format": "something-else", "version": 2})

    def test_restored_replica_enumerates_identically(self):
        # the parallel layer's contract: a worker restored from the
        # snapshot must produce byte-identical enumeration output
        g = DynamicDiGraph([(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)])
        replica_a = restore_graph(graph_snapshot(g))
        replica_b = restore_graph(graph_snapshot(g))
        paths_a = CpeEnumerator(replica_a, 0, 3, 3).startup()
        paths_b = CpeEnumerator(replica_b, 0, 3, 3).startup()
        assert paths_a == paths_b
