"""Tests for batch update processing."""

import random

import pytest

from repro.baselines.bruteforce import path_set
from repro.core.batch import CpeBatch, compress_stream
from repro.core.enumerator import CpeEnumerator
from repro.graph.digraph import DynamicDiGraph, EdgeUpdate
from tests.conftest import make_random_graph, random_query


class TestCompressStream:
    def test_cancelling_pair_disappears(self):
        g = DynamicDiGraph()
        stream = [EdgeUpdate(0, 1, True), EdgeUpdate(0, 1, False)]
        assert compress_stream(g, stream) == []

    def test_net_insert_survives(self):
        g = DynamicDiGraph()
        stream = [
            EdgeUpdate(0, 1, True),
            EdgeUpdate(0, 1, False),
            EdgeUpdate(0, 1, True),
        ]
        assert compress_stream(g, stream) == [EdgeUpdate(0, 1, True)]

    def test_delete_of_existing_edge_survives(self):
        g = DynamicDiGraph([(0, 1)])
        stream = [EdgeUpdate(0, 1, False)]
        assert compress_stream(g, stream) == stream

    def test_reinsert_of_existing_edge_cancels(self):
        g = DynamicDiGraph([(0, 1)])
        stream = [EdgeUpdate(0, 1, False), EdgeUpdate(0, 1, True)]
        assert compress_stream(g, stream) == []

    def test_graph_untouched(self):
        g = DynamicDiGraph([(0, 1)])
        compress_stream(g, [EdgeUpdate(0, 1, False)])
        assert g.has_edge(0, 1)

    def test_order_follows_last_occurrence(self):
        g = DynamicDiGraph()
        stream = [
            EdgeUpdate(0, 1, True),
            EdgeUpdate(2, 3, True),
            EdgeUpdate(0, 1, False),
            EdgeUpdate(0, 1, True),
        ]
        survivors = compress_stream(g, stream)
        assert survivors == [EdgeUpdate(2, 3, True), EdgeUpdate(0, 1, True)]

    def test_insert_delete_same_edge_cancels_and_order_is_preserved(self):
        """A net-zero insert+delete pair vanishes; survivors keep order.

        Regression for the service layer's batch ingestion: an edge
        inserted and deleted within one batch must produce *no* repair
        work, and the surviving updates must replay in their original
        relative order.
        """
        g = DynamicDiGraph([(4, 5)])
        stream = [
            EdgeUpdate(9, 10, True),    # survivor 1
            EdgeUpdate(0, 1, True),     # cancelled by the delete below
            EdgeUpdate(4, 5, False),    # survivor 2
            EdgeUpdate(0, 1, False),    # completes the net-zero pair
            EdgeUpdate(6, 7, True),     # survivor 3
        ]
        survivors = compress_stream(g, stream)
        assert EdgeUpdate(0, 1, True) not in survivors
        assert EdgeUpdate(0, 1, False) not in survivors
        assert survivors == [
            EdgeUpdate(9, 10, True),
            EdgeUpdate(4, 5, False),
            EdgeUpdate(6, 7, True),
        ]

    def test_trailing_noop_reinsert_does_not_reorder_survivors(self):
        """Ineffective occurrences must not bump survivor order.

        Regression: a trailing re-insert of an already-final-present
        edge used to bump its ``last seen`` position, moving it after
        later survivors even though the documented order is "last
        *effective* occurrence in the stream".
        """
        g = DynamicDiGraph()
        stream = [
            EdgeUpdate(0, 1, True),   # effective at position 0
            EdgeUpdate(2, 3, True),   # effective at position 1
            EdgeUpdate(0, 1, True),   # no-op: (0, 1) is already present
        ]
        survivors = compress_stream(g, stream)
        assert survivors == [EdgeUpdate(0, 1, True), EdgeUpdate(2, 3, True)]

    def test_noop_delete_of_absent_edge_does_not_reorder_survivors(self):
        g = DynamicDiGraph([(0, 1)])
        stream = [
            EdgeUpdate(0, 1, False),  # effective at position 0
            EdgeUpdate(2, 3, True),   # effective at position 1
            EdgeUpdate(0, 1, False),  # no-op: (0, 1) is already deleted
        ]
        survivors = compress_stream(g, stream)
        assert survivors == [EdgeUpdate(0, 1, False), EdgeUpdate(2, 3, True)]

    def test_compressed_replay_equals_full_replay(self):
        rng = random.Random(12)
        for _ in range(30):
            g = make_random_graph(rng, max_edges=10)
            stream = []
            for _ in range(20):
                u, v = rng.sample(list(g.vertices()), 2)
                stream.append(EdgeUpdate(u, v, rng.random() < 0.5))
            full = g.copy()
            for upd in stream:
                full.apply_update(upd)
            compressed = g.copy()
            for upd in compress_stream(g, stream):
                assert compressed.apply_update(upd), "net update must be valid"
            assert compressed == full


class TestCpeBatch:
    def test_net_delta_matches_bruteforce_diff(self):
        rng = random.Random(13)
        for _ in range(25):
            g = make_random_graph(rng, max_edges=12)
            s, t, k = random_query(rng, g)
            before = path_set(g, s, t, k)
            stream = []
            scratch = g.copy()
            for _ in range(12):
                u, v = rng.sample(list(g.vertices()), 2)
                upd = EdgeUpdate(u, v, not scratch.has_edge(u, v))
                scratch.apply_update(upd)
                stream.append(upd)
            batch = CpeBatch(CpeEnumerator(g, s, t, k))
            result = batch.apply(stream, compress=rng.random() < 0.5)
            after = path_set(g, s, t, k)
            assert set(result.new_paths) == after - before
            assert set(result.deleted_paths) == before - after

    def test_compression_skips_noops(self):
        g = DynamicDiGraph([(0, 1), (1, 2)])
        batch = CpeBatch(CpeEnumerator(g, 0, 2, 3))
        stream = [
            EdgeUpdate(0, 2, True),
            EdgeUpdate(0, 2, False),
            EdgeUpdate(1, 2, False),
            EdgeUpdate(1, 2, True),
        ]
        result = batch.apply(stream)
        assert result.applied == 0
        assert result.skipped_by_compression == 4
        assert result.new_paths == [] and result.deleted_paths == []

    def test_uncompressed_counts_every_update(self):
        g = DynamicDiGraph([(0, 1), (1, 2)])
        batch = CpeBatch(CpeEnumerator(g, 0, 2, 3))
        stream = [EdgeUpdate(0, 2, True), EdgeUpdate(0, 2, False)]
        result = batch.apply(stream, compress=False)
        assert result.applied == 2
        assert result.new_paths == [] and result.deleted_paths == []
        assert len(result.per_update) == 2

    def test_net_delta_property(self):
        g = DynamicDiGraph([(0, 1), (1, 2)])
        batch = CpeBatch(CpeEnumerator(g, 0, 2, 3))
        result = batch.apply([EdgeUpdate(0, 2, True)])
        assert result.net_delta == 1
