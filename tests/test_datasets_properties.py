"""Property checks on the dataset analogues (Table I fidelity)."""

import pytest

from repro.graph import datasets
from repro.graph.stats import average_degree


@pytest.fixture(scope="module")
def graphs():
    return {name: datasets.load(name, 0.15) for name in datasets.DATASET_ORDER}


def test_sparse_datasets_are_sparsest(graphs):
    """TS and WK are the paper's least dense graphs; the analogues agree."""
    densities = {n: average_degree(g) for n, g in graphs.items()}
    sparse = {densities["TS"], densities["WK"]}
    assert min(sparse) == min(densities.values())
    dense_floor = sorted(densities.values())[-4]
    assert all(d < dense_floor for d in sparse)


def test_lj_denser_than_median(graphs):
    densities = sorted(average_degree(g) for g in graphs.values())
    assert average_degree(graphs["LJ"]) >= densities[len(densities) // 2]


def test_power_law_analogues_have_hubs(graphs):
    for name in ("EP", "SD", "WG", "SK", "PK", "LJ", "TW"):
        g = graphs[name]
        degrees = sorted((g.degree(v) for v in g.vertices()), reverse=True)
        mean = sum(degrees) / len(degrees)
        assert degrees[0] > 3 * mean, f"{name} lacks hubs"


def test_community_analogues_have_local_density(graphs):
    # RT/BD: most edges stay within a community block
    for name, size in (("RT", 40), ("BD", 100)):
        g = graphs[name]
        internal = sum(
            1 for u, v in g.edges() if u // size == v // size
        )
        assert internal > 0.5 * g.num_edges, f"{name} lost its communities"


def test_vertex_count_ordering_matches_paper(graphs):
    paper_sizes = [
        datasets.spec(n).paper.num_vertices for n in datasets.DATASET_ORDER
    ]
    ours = [graphs[n].num_vertices for n in datasets.DATASET_ORDER]
    # the orderings agree pairwise up to ties in the scaled sizes
    for i in range(len(ours)):
        for j in range(i + 1, len(ours)):
            if paper_sizes[i] < paper_sizes[j]:
                assert ours[i] <= ours[j], (
                    datasets.DATASET_ORDER[i], datasets.DATASET_ORDER[j]
                )


def test_every_analogue_small_world_enough_for_k6(graphs):
    """Queries at k=6 must be satisfiable: some pair within 6 hops."""
    from repro.workloads.queries import _within_hops, random_queries

    for name, g in graphs.items():
        queries = random_queries(g, 3, 6, seed=1, connected=True)
        hits = sum(1 for q in queries if _within_hops(g, q.s, q.t, 6))
        assert hits >= 1, f"{name}: no reachable pairs at k=6"
