"""Tests for multi-pair and sliding-window monitoring."""

import random

import pytest

from repro.baselines.bruteforce import path_set
from repro.core.monitor import MultiPairMonitor, SlidingWindowMonitor
from repro.graph.digraph import DynamicDiGraph, EdgeUpdate
from tests.conftest import make_random_graph


class TestMultiPairMonitor:
    def make(self):
        g = DynamicDiGraph([(0, 1), (1, 2), (2, 3), (0, 2), (1, 3)])
        mon = MultiPairMonitor(g, k=3)
        return g, mon

    def test_watch_returns_initial_results(self):
        g, mon = self.make()
        paths = mon.watch(0, 3)
        assert set(paths) == path_set(g, 0, 3, 3)

    def test_watch_duplicate_rejected(self):
        _, mon = self.make()
        mon.watch(0, 3)
        with pytest.raises(ValueError):
            mon.watch(0, 3)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            MultiPairMonitor(DynamicDiGraph(), k=-1)

    def test_unwatch(self):
        _, mon = self.make()
        mon.watch(0, 3)
        assert mon.unwatch(0, 3) is True
        assert mon.unwatch(0, 3) is False
        assert len(mon) == 0

    def test_update_fans_out_to_all_pairs(self):
        g, mon = self.make()
        mon.watch(0, 3)
        mon.watch(1, 3)
        results = mon.insert_edge(0, 3)
        assert set(results) == {(0, 3), (1, 3)}
        assert (0, 3) in {tuple(p) for p in results[(0, 3)].paths}
        assert results[(1, 3)].paths == []  # unaffected pair: empty delta

    def test_noop_update(self):
        _, mon = self.make()
        mon.watch(0, 3)
        results = mon.insert_edge(0, 1)  # already present
        assert results[(0, 3)].changed is False

    def test_per_pair_k_override(self):
        g, mon = self.make()
        paths = mon.watch(0, 3, k=1)
        assert paths == []  # no direct edge yet
        results = mon.insert_edge(0, 3)
        assert results[(0, 3)].paths == [(0, 3)]

    def test_randomized_consistency_across_pairs(self):
        rng = random.Random(17)
        for _ in range(20):
            g = make_random_graph(rng, n_lo=5, n_hi=8, max_edges=14)
            mon = MultiPairMonitor(g, k=4)
            vertices = list(g.vertices())
            pairs = []
            for _ in range(3):
                s, t = rng.sample(vertices, 2)
                if (s, t) not in mon.pairs():
                    mon.watch(s, t)
                    pairs.append((s, t))
            for _ in range(12):
                u, v = rng.sample(vertices, 2)
                update = EdgeUpdate(u, v, not g.has_edge(u, v))
                mon.apply(update)
            for (s, t), paths in mon.results().items():
                assert set(paths) == path_set(g, s, t, 4)

    def test_enumerator_for(self):
        _, mon = self.make()
        mon.watch(0, 3)
        assert mon.enumerator_for(0, 3).s == 0
        with pytest.raises(KeyError):
            mon.enumerator_for(9, 9)


class TestSlidingWindowMonitor:
    def make(self, window=10.0):
        g = DynamicDiGraph(vertices=range(5))
        mon = MultiPairMonitor(g, k=3)
        mon.watch(0, 3)
        return g, mon, SlidingWindowMonitor(mon, window)

    def test_window_must_be_positive(self):
        _, mon, _ = self.make()
        with pytest.raises(ValueError):
            SlidingWindowMonitor(mon, 0)

    def test_arrivals_create_paths(self):
        g, mon, win = self.make()
        win.offer(0, 1, 1.0)
        win.offer(1, 2, 2.0)
        event = win.offer(2, 3, 3.0)
        assert event.new_paths((0, 3)) == [(0, 1, 2, 3)]
        assert win.live_edges() == 3

    def test_expiration_deletes_paths(self):
        g, mon, win = self.make(window=5.0)
        win.offer(0, 1, 0.0)
        win.offer(1, 2, 1.0)
        win.offer(2, 3, 2.0)
        event = win.offer(4, 4 - 4, 6.0)  # edge (4, 0) at t=6: (0,1) expired
        assert (0, 1, 2, 3) in event.deleted_paths((0, 3))
        assert not g.has_edge(0, 1)

    def test_reoffer_extends_lifetime(self):
        g, mon, win = self.make(window=5.0)
        win.offer(0, 1, 0.0)
        win.offer(0, 1, 4.0)  # refresh
        event = win.advance(6.0)  # original expiry passed, refreshed not
        assert g.has_edge(0, 1)
        assert event.expirations == []
        event = win.advance(9.5)
        assert not g.has_edge(0, 1)
        assert len(event.expirations) == 1

    def test_reoffer_at_exact_expiry_extends_without_churn(self):
        """Offer at exactly ``latest + window``: last activity wins.

        Regression: the boundary used to expire + re-insert the edge,
        emitting spurious deleted/new path churn for a refresh.
        """
        g, mon, win = self.make(window=5.0)
        win.offer(0, 1, 0.0)
        event = win.offer(0, 1, 5.0)  # exactly latest + window
        assert event.expirations == []
        assert event.arrivals == {}  # refresh, not a re-insert
        assert g.has_edge(0, 1)
        assert win.live_edges() == 1
        # the refresh moved the expiry to 10.0
        event = win.advance(10.0)
        assert len(event.expirations) == 1
        assert not g.has_edge(0, 1)

    def test_reoffer_just_before_expiry_refreshes(self):
        g, mon, win = self.make(window=5.0)
        win.offer(0, 1, 0.0)
        event = win.offer(0, 1, 5.0 - 1e-9)
        assert event.expirations == []
        assert event.arrivals == {}
        assert g.has_edge(0, 1)

    def test_reoffer_just_after_expiry_churns(self):
        g, mon, win = self.make(window=5.0)
        win.offer(0, 1, 0.0)
        event = win.offer(0, 1, 5.0 + 1e-9)
        # the edge genuinely expired before the re-offer: delete + insert
        assert len(event.expirations) == 1
        assert event.arrivals != {}
        assert g.has_edge(0, 1)
        assert win.live_edges() == 1

    def test_pure_advance_at_exact_expiry_still_expires(self):
        g, mon, win = self.make(window=5.0)
        win.offer(0, 1, 0.0)
        event = win.advance(5.0)  # no offer: the boundary is inclusive
        assert len(event.expirations) == 1
        assert not g.has_edge(0, 1)

    def test_timestamps_must_be_monotone(self):
        _, _, win = self.make()
        win.offer(0, 1, 5.0)
        with pytest.raises(ValueError):
            win.offer(1, 2, 4.0)
        with pytest.raises(ValueError):
            win.advance(1.0)

    def test_replay_matches_manual_state(self):
        g, mon, win = self.make(window=3.0)
        stream = [(0, 1, 0.0), (1, 2, 1.0), (2, 3, 2.0), (0, 2, 5.0)]
        events = win.replay(stream)
        assert len(events) == 4
        # at t=5 with window 3, every edge offered at t<=2 has expired
        live = {(u, v) for u, v in g.edges()}
        assert live == {(0, 2)}
        # maintained result equals brute force on the live graph
        paths = mon.results()[(0, 3)]
        assert set(paths) == path_set(g, 0, 3, 3)

    def test_now_tracks_stream(self):
        _, _, win = self.make()
        win.offer(0, 1, 2.5)
        assert win.now == 2.5
