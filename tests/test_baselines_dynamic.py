"""Differential tests for the dynamic baselines (CSM*, recompute)."""

import random

import pytest

from repro.baselines.bruteforce import path_set
from repro.baselines.csm import CsmStarEnumerator
from repro.baselines.recompute import RecomputeEnumerator
from repro.graph.digraph import DynamicDiGraph, EdgeUpdate
from tests.conftest import make_random_graph, random_query

FACTORIES = [
    lambda g, s, t, k: CsmStarEnumerator(g, s, t, k),
    lambda g, s, t, k: RecomputeEnumerator(g, s, t, k, method="pathenum"),
    lambda g, s, t, k: RecomputeEnumerator(g, s, t, k, method="bcjoin"),
]


@pytest.mark.parametrize("factory", FACTORIES)
class TestDynamicBaselines:
    def test_startup_matches_bruteforce(self, factory, diamond):
        enum = factory(diamond.copy(), 0, 3, 3)
        assert set(enum.startup()) == path_set(diamond, 0, 3, 3)

    def test_insert_delta(self, factory):
        g = DynamicDiGraph([(0, 1), (2, 3)])
        enum = factory(g, 0, 3, 3)
        enum.startup()
        result = enum.insert_edge(1, 2)
        assert set(result.paths) == {(0, 1, 2, 3)}

    def test_delete_delta(self, factory):
        g = DynamicDiGraph([(0, 1), (1, 2), (2, 3)])
        enum = factory(g, 0, 3, 3)
        enum.startup()
        result = enum.delete_edge(1, 2)
        assert set(result.paths) == {(0, 1, 2, 3)}

    def test_noop_updates(self, factory, diamond):
        enum = factory(diamond, 0, 3, 3)
        enum.startup()
        assert enum.insert_edge(0, 1).changed is False
        assert enum.delete_edge(8, 9).changed is False

    def test_randomized_streams(self, factory):
        rng = random.Random(31)
        for _ in range(15):
            g = make_random_graph(rng, max_edges=12)
            s, t, k = random_query(rng, g)
            enum = factory(g, s, t, k)
            enum.startup()
            current = path_set(g, s, t, k)
            for _ in range(10):
                u, v = rng.sample(list(g.vertices()), 2)
                if g.has_edge(u, v):
                    result = enum.delete_edge(u, v)
                    fresh = path_set(g, s, t, k)
                    assert set(result.paths) == current - fresh
                else:
                    result = enum.insert_edge(u, v)
                    fresh = path_set(g, s, t, k)
                    assert set(result.paths) == fresh - current
                current = fresh

    def test_apply_protocol(self, factory, diamond):
        enum = factory(diamond, 0, 3, 3)
        enum.startup()
        result = enum.apply(EdgeUpdate(0, 3, False))
        assert (0, 3) in result.paths


class TestCsmSpecifics:
    def test_rejects_equal_endpoints(self):
        with pytest.raises(ValueError):
            CsmStarEnumerator(DynamicDiGraph([(0, 1)]), 2, 2, 3)

    def test_terminal_interior_updates_yield_nothing(self, diamond):
        enum = CsmStarEnumerator(diamond, 0, 3, 4)
        enum.startup()
        assert enum.insert_edge(3, 1).paths == []  # t cannot be interior
        assert enum.insert_edge(2, 0).paths == []  # s cannot be interior

    def test_index_memory_grows_with_k(self, diamond):
        small = CsmStarEnumerator(diamond.copy(), 0, 3, 2).index_memory_bytes()
        large = CsmStarEnumerator(diamond.copy(), 0, 3, 6).index_memory_bytes()
        assert large > small


class TestRecomputeSpecifics:
    def test_unknown_method(self, diamond):
        with pytest.raises(ValueError, match="unknown method"):
            RecomputeEnumerator(diamond, 0, 3, 3, method="nope")

    def test_name_reflects_method(self, diamond):
        enum = RecomputeEnumerator(diamond, 0, 3, 3, method="bcjoin")
        assert enum.name == "bcjoin-recompute"

    def test_update_without_priming_startup(self):
        g = DynamicDiGraph([(0, 1), (1, 2), (2, 3)])
        enum = RecomputeEnumerator(g, 0, 3, 3)
        # no explicit startup(): the first update must still diff correctly
        result = enum.delete_edge(1, 2)
        assert set(result.paths) == {(0, 1, 2, 3)}
