"""Tests for the gen-workload / monitor CLI commands and ablation driver."""

import pytest

from repro.cli import main


@pytest.fixture
def stream_file(tmp_path):
    target = tmp_path / "stream.txt"
    code = main(
        [
            "gen-workload", "RT", "0", "5", "4", str(target),
            "--insertions", "5", "--deletions", "5",
            "--scale", "0.2", "--seed", "3",
        ]
    )
    assert code == 0
    return target


def test_gen_workload_writes_stream(stream_file, capsys):
    lines = stream_file.read_text().strip().splitlines()
    assert 0 < len(lines) <= 10
    assert all(line[0] in "+-" for line in lines)


def test_gen_workload_impossible_query(tmp_path, capsys):
    # vertices far apart / disconnected: no relevant updates
    code = main(
        [
            "gen-workload", "WK", "0", "1", "1", str(tmp_path / "x.txt"),
            "--scale", "0.05",
        ]
    )
    err = capsys.readouterr().err
    if code == 2:
        assert "no relevant updates" in err
    else:  # the tiny analogue may still admit a stream; both are fine
        assert code == 0


def test_monitor_replays_stream(stream_file, capsys):
    code = main(
        [
            "monitor", "RT", str(stream_file),
            "--pair", "0:5", "--k", "4", "--scale", "0.2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "watch (0, 5)" in out
    assert "net path-count change" in out


def test_monitor_verbose_prints_paths(stream_file, capsys):
    code = main(
        [
            "monitor", "RT", str(stream_file),
            "--pair", "0:5", "--k", "4", "--scale", "0.2", "--verbose",
        ]
    )
    assert code == 0


def test_monitor_bad_pair(stream_file, capsys):
    code = main(
        ["monitor", "RT", str(stream_file), "--pair", "zap"]
    )
    assert code == 2
    assert "bad --pair" in capsys.readouterr().err


def test_ablation_experiment_runs(capsys):
    code = main(
        [
            "experiment", "ablation",
            "--scale", "0.15", "--queries", "1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Ablation" in out
    assert "weak/strong" in out


def test_verify_subcommand_clean(stream_file, capsys):
    code = main(
        [
            "verify", "RT", "0", "5", "4",
            "--stream", str(stream_file), "--scale", "0.2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "audit OK" in out


def test_verify_subcommand_without_stream(capsys):
    assert main(["verify", "RT", "0", "5", "4", "--scale", "0.2"]) == 0
    assert "audit OK" in capsys.readouterr().out


def test_ablation_shape():
    from repro.experiments import ablation
    from repro.experiments.common import ExperimentConfig

    cfg = ExperimentConfig(
        scale=0.3, num_queries=1, k=5, seed=2, datasets=("SD",)
    )
    result = ablation.run(cfg)
    row = result.rows[0]
    headers = result.headers
    weak = row[headers.index("partials weak-prune")]
    strong = row[headers.index("partials fixed-cut")]
    assert weak >= strong  # Optimization 1 never stores more
    assert 0.0 <= row[headers.index("pruned %")] <= 100.0
